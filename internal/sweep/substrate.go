package sweep

import (
	"fmt"
	"sync"

	"gputopo/internal/caffesim"
	"gputopo/internal/core"
	"gputopo/internal/job"
	"gputopo/internal/profile"
	"gputopo/internal/simulator"
	"gputopo/internal/topology"
	"gputopo/internal/workload"
)

// substrateCache builds each distinct simulation substrate — an immutable
// *topology.Topology plus the *profile.Store generated from it — exactly
// once per Run and shares it across all points and workers. A grid's
// points overwhelmingly reuse a handful of topology specs (a 4-policy ×
// 5-replica × 3-threshold grid used to rebuild the same 1k-machine
// substrate 60 times: O(GPUs) restricted-Dijkstra sweeps in
// computeMatrices plus repeated Best/WorstAllocation greedy searches in
// profile.Generate, per point).
//
// Sharing is safe because both halves are immutable after construction
// and all their read paths are concurrency-safe: topology memoizes its
// extreme allocations behind per-size sync.Once entries, and the profile
// store is never Add()ed to after Generate. The per-entry sync.Once below
// additionally guarantees each substrate is built by exactly one worker
// while the rest block on it instead of duplicating the work.
// docs/architecture.md records the immutability invariants this relies
// on.
type substrateCache struct {
	mu      sync.Mutex
	entries map[substrateKey]*substrateEntry
}

// substrateKey identifies a distinct substrate: the resolved topology
// source (TopologySpec.Key covers builder/mix/matrix_file plus weight
// overrides), the directory matrix_file paths resolve against, the
// effective machine count, and whether the single-machine standalone
// builder applies (Table 1 points).
type substrateKey struct {
	topo       string
	specDir    string
	machines   int
	standalone bool
}

type substrateEntry struct {
	once     sync.Once
	topo     *topology.Topology
	profiles *profile.Store
	err      error
}

func newSubstrateCache() *substrateCache {
	return &substrateCache{entries: map[substrateKey]*substrateEntry{}}
}

// substrate returns the shared (topology, profiles) pair for the spec,
// building it on first use. The profile store mirrors what the engines
// would generate themselves when Config.Profiles is nil, so cached and
// uncached runs are bit-identical.
func (c *substrateCache) substrate(ts TopologySpec, machines int, standalone bool) (*topology.Topology, *profile.Store, error) {
	key := substrateKey{topo: ts.Key(), specDir: ts.specDir, machines: machines, standalone: standalone}
	c.mu.Lock()
	e := c.entries[key]
	if e == nil {
		e = &substrateEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.topo, e.err = ts.Build(machines, standalone)
		if e.err != nil {
			return
		}
		maxGPUs := e.topo.NumGPUs()
		if maxGPUs > 8 {
			maxGPUs = 8
		}
		// Pre-warms the topology's extreme-allocation memos as a side
		// effect, so workers start from a fully materialized substrate.
		e.profiles = profile.Generate(e.topo, maxGPUs)
	})
	return e.topo, e.profiles, e.err
}

// runner is the default point runner: it resolves the point's substrate
// through the cache and executes the selected engine.
func (c *substrateCache) runner(p Point) (*RunOutput, error) {
	return c.runPoint(p, schedTweaks{})
}

// schedTweaks bundles the scheduler escape hatches the equivalence tests
// thread through runPoint; production runs always use the zero value.
type schedTweaks struct {
	disableEpochGate  bool
	disableWakeIndex  bool
	disablePlaceCache bool
}

// runPoint materializes the point's workload on the cached substrate and
// runs the engine.
func (c *substrateCache) runPoint(p Point, tweaks schedTweaks) (*RunOutput, error) {
	var topo *topology.Topology
	var profiles *profile.Store
	var jobs []*job.Job
	var err error
	switch p.Source {
	case SourceTable1:
		// Table 1 replays run on one standalone machine unless the spec
		// pins a larger cluster.
		topo, profiles, err = c.substrate(p.Topology, p.Topology.Machines, true)
		if err != nil {
			return nil, err
		}
		jobs = workload.Table1()
	case SourceGenerated:
		// The global substrate is keyed on the spec with any domain split
		// stripped: jobs generate against the whole cluster (so the
		// workload is identical at every domain count), and a 1-domain
		// shard then resolves to this very cache entry.
		base := p.Topology
		base.Domains = ""
		topo, profiles, err = c.substrate(base, p.Machines, false)
		if err != nil {
			return nil, err
		}
		gen := workload.GenConfig{Jobs: p.Jobs, Seed: p.Seed, HighPriorityShare: p.grid.PriorityShare}
		if p.grid.RatePerMachine > 0 {
			gen.ArrivalRate = p.grid.RatePerMachine * float64(p.Machines)
		}
		jobs, err = workload.Generate(gen, topo)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("sweep: unknown source %v", p.Source)
	}
	if p.Threshold >= 0 {
		for _, j := range jobs {
			if j.GPUs > 1 {
				j.MinUtility = p.Threshold
			}
		}
	}
	var weights core.Weights
	if p.AlphaCC >= 0 {
		rest := (1 - p.AlphaCC) / 2
		weights = core.Weights{CommCost: p.AlphaCC, Interference: rest, Fragmentation: rest}
	}

	disc, preempt, err := ParseDisciplineMode(p.Discipline)
	if err != nil {
		return nil, err
	}

	switch p.Engine {
	case EngineSim:
		simCfg := simulator.Config{
			Topology:          topo,
			Policy:            p.Policy,
			Weights:           weights,
			Profiles:          profiles,
			Seed:              p.Seed,
			SampleInterval:    p.grid.SampleInterval,
			JitterStddev:      p.grid.JitterStddev,
			DisableEpochGate:  tweaks.disableEpochGate,
			DisableWakeIndex:  tweaks.disableWakeIndex,
			DisablePlaceCache: tweaks.disablePlaceCache,
			Discipline:        disc,
			EnablePreemption:  preempt,
		}
		if p.Topology.Domains != "" {
			if p.Source != SourceGenerated {
				return nil, fmt.Errorf("sweep: sharded domains need generated workloads")
			}
			shards, err := c.shardSubstrates(p.Topology, p.Machines)
			if err != nil {
				return nil, err
			}
			simShards := make([]simulator.Shard, len(shards))
			for d, sh := range shards {
				simShards[d] = simulator.Shard{Topology: sh.topo, Profiles: sh.profiles, Machines: sh.machines}
			}
			res, err := simulator.RunSharded(simCfg, simShards, jobs, 0)
			if err != nil {
				return nil, err
			}
			return &RunOutput{Sim: res}, nil
		}
		res, err := simulator.Run(simCfg, jobs)
		if err != nil {
			return nil, err
		}
		return &RunOutput{Sim: res}, nil
	case EngineProto:
		if p.Topology.Domains != "" {
			return nil, fmt.Errorf("sweep: sharded domains need the sim engine")
		}
		res, err := caffesim.Run(caffesim.Config{
			Topology:     topo,
			Policy:       p.Policy,
			Weights:      weights,
			Profiles:     profiles,
			Seed:         p.Seed,
			JitterStddev: p.grid.JitterStddev,
		}, jobs)
		if err != nil {
			return nil, err
		}
		return &RunOutput{Sim: &res.Result, Proto: res}, nil
	default:
		return nil, fmt.Errorf("sweep: unknown engine %v", p.Engine)
	}
}
