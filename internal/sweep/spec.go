package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"gputopo/internal/schedcore/domains"
	"gputopo/internal/topology"
)

// matrixFileCache memoizes matrix-file contents by path for the lifetime
// of the process. Every point of a matrix_file grid re-builds its
// topology, so without the cache a P-point sweep would re-read the file
// P times from inside the worker pool — and a file modified mid-sweep
// could put different substrates inside one artifact, breaking the
// any-worker-count determinism guarantee.
var matrixFileCache sync.Map // path -> string

// readMatrixFile returns the (cached) content of a matrix file. The cache
// key is the absolute path, so relative paths cannot alias across working
// directories.
func readMatrixFile(path string) (string, error) {
	if abs, err := filepath.Abs(path); err == nil {
		path = abs
	}
	if data, ok := matrixFileCache.Load(path); ok {
		return data.(string), nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	content, _ := matrixFileCache.LoadOrStore(path, string(data))
	return content.(string), nil
}

// TopologySpec names the physical topology of a grid cell declaratively.
// Exactly one of three sources applies:
//
//   - Builder: a registered homogeneous builder ("minsky", "dgx1",
//     "pcie") sized by Machines or the grid's Machines axis. The zero
//     value is the legacy default — a Minsky cluster sized by the axis.
//   - Mix: a heterogeneous cluster as ordered builder:count runs
//     (topology.HeterogeneousCluster). A mix pins its own machine count.
//   - MatrixFile: a discovered machine parsed from an nvidia-smi-style
//     connectivity-matrix file (topology.ParseMatrix), stamped once per
//     machine under a network root.
//
// Because the spec is plain data, it can serve as a grid axis: the sweep
// engine expands Grid.Topologies like any other axis, and the spec
// round-trips through grid spec files and report artifacts.
type TopologySpec struct {
	// Builder is a name accepted by topology.ParseMachineKind; empty
	// means "minsky" (unless Mix or MatrixFile is set).
	Builder string `json:"builder,omitempty"`
	// Mix declares a heterogeneous cluster as ordered builder:count
	// pairs. Mutually exclusive with Builder, MatrixFile and Machines.
	Mix []MixEntry `json:"mix,omitempty"`
	// MatrixFile is the path of a connectivity-matrix file. In a grid
	// loaded from a spec file, a relative path resolves against the spec
	// file's directory first (so spec files are relocatable) and falls
	// back to the working directory; elsewhere (named grids, hand-built
	// specs) it resolves against the working directory. Mutually
	// exclusive with Builder and Mix.
	MatrixFile string `json:"matrix_file,omitempty"`
	// Machines pins the machine count of this topology. 0 defers to the
	// grid's Machines axis; a grid may set one or the other, not both.
	Machines int `json:"machines,omitempty"`
	// Weights overrides the qualitative level weights (zero fields keep
	// the Figure 7 defaults).
	Weights *topology.LevelWeights `json:"weights,omitempty"`
	// Domains declares sharded multi-domain scheduling over this topology
	// (domains.Parse syntax: "hash:4", "block:2", "kind"). Empty — the
	// value every recorded artifact carries — keeps the single-core
	// engine; see docs/sharding.md.
	Domains string `json:"domains,omitempty"`

	// specDir is the directory of the spec file this spec was loaded
	// from, set by LoadGridSpec. It only affects MatrixFile resolution —
	// Key() keeps the path exactly as written, so artifacts stay
	// byte-identical wherever the spec file lives.
	specDir string
}

// matrixPath resolves MatrixFile: absolute paths and specs without a
// spec-file origin pass through (working-directory semantics); otherwise
// the spec file's directory wins when the file exists there, with the
// working directory as the legacy fallback.
func (ts TopologySpec) matrixPath() string {
	if ts.specDir == "" || filepath.IsAbs(ts.MatrixFile) {
		return ts.MatrixFile
	}
	p := filepath.Join(ts.specDir, ts.MatrixFile)
	if _, err := os.Stat(p); err == nil {
		return p
	}
	return ts.MatrixFile
}

// MixEntry is one run of identical machines in a heterogeneous topology
// spec: Count machines built by the named builder. The kind accepts the
// degraded "-<n>g" suffix ("minsky-1g" is a Minsky with one failed GPU),
// so fleets with partially failed nodes are first-class grid axes.
type MixEntry struct {
	Kind  string `json:"kind"`
	Count int    `json:"count"`
}

// mixSpecs converts the Mix entries to topology machine specs.
func (ts TopologySpec) mixSpecs() ([]topology.MachineSpec, error) {
	specs := make([]topology.MachineSpec, 0, len(ts.Mix))
	for _, e := range ts.Mix {
		kind, failed, err := topology.ParseMixKind(e.Kind)
		if err != nil {
			return nil, err
		}
		if e.Count < 1 {
			return nil, fmt.Errorf("mix entry %s:%d needs a machine count >= 1", e.Kind, e.Count)
		}
		specs = append(specs, topology.MachineSpec{Kind: kind, Count: e.Count, Failed: failed})
	}
	return specs, nil
}

// mixKey renders the mix in the canonical "minsky:2+dgx1:1" form.
func (ts TopologySpec) mixKey() string {
	parts := make([]string, len(ts.Mix))
	for i, e := range ts.Mix {
		parts[i] = fmt.Sprintf("%s:%d", e.Kind, e.Count)
	}
	return strings.Join(parts, "+")
}

// builderOrDefault returns the builder name with the empty default applied.
func (ts TopologySpec) builderOrDefault() string {
	if ts.Builder == "" {
		return topology.KindMinsky.String()
	}
	return ts.Builder
}

// Key is the compact deterministic label of the spec used in cell keys,
// CSV artifacts and diff tables: the source ("minsky",
// "mix[minsky:2+dgx1:1]", "matrix[path/to/file]"), then ":N" when the
// machine count is pinned, then the non-zero weight overrides in fixed
// field order, e.g. "dgx1:2", "minsky[socket=5]", "matrix[dgx1.matrix]:4".
func (ts TopologySpec) Key() string {
	var sb strings.Builder
	switch {
	case len(ts.Mix) > 0:
		fmt.Fprintf(&sb, "mix[%s]", ts.mixKey())
	case ts.MatrixFile != "":
		fmt.Fprintf(&sb, "matrix[%s]", ts.MatrixFile)
	default:
		sb.WriteString(ts.builderOrDefault())
	}
	if ts.Machines > 0 {
		fmt.Fprintf(&sb, ":%d", ts.Machines)
	}
	if ts.Weights != nil {
		var parts []string
		add := func(name string, v float64) {
			if v != 0 {
				parts = append(parts, fmt.Sprintf("%s=%g", name, v))
			}
		}
		add("gpupeer", ts.Weights.GPUPeer)
		add("gpulink", ts.Weights.GPULink)
		add("switch", ts.Weights.Switch)
		add("socket", ts.Weights.Socket)
		add("machine", ts.Weights.Machine)
		if len(parts) > 0 {
			sb.WriteString("[" + strings.Join(parts, ";") + "]")
		}
	}
	if ts.Domains != "" {
		fmt.Fprintf(&sb, "/domains[%s]", ts.Domains)
	}
	return sb.String()
}

// EffectiveMachines resolves the machine count of a point on this
// topology: a mix's total count, else the spec's pinned count when set,
// else the Machines-axis value.
func (ts TopologySpec) EffectiveMachines(axis int) int {
	if len(ts.Mix) > 0 {
		total := 0
		for _, e := range ts.Mix {
			total += e.Count
		}
		return total
	}
	if ts.Machines > 0 {
		return ts.Machines
	}
	return axis
}

// pinsMachines reports whether the spec fixes its own machine count and
// therefore conflicts with a grid-level Machines axis.
func (ts TopologySpec) pinsMachines() bool {
	return ts.Machines > 0 || len(ts.Mix) > 0
}

// Validate checks the spec against the builder registry, rejects
// conflicting topology sources, and — for matrix specs — requires the
// file to exist and parse, so a bad path fails before any simulation
// runs.
func (ts TopologySpec) Validate() error {
	if ts.Mix != nil && len(ts.Mix) == 0 {
		return fmt.Errorf("topology spec: mix is present but empty — omit it to use a builder")
	}
	if len(ts.Mix) > 0 {
		if ts.Builder != "" {
			return fmt.Errorf("topology spec %s: mix and builder are mutually exclusive", ts.Key())
		}
		if ts.MatrixFile != "" {
			return fmt.Errorf("topology spec %s: mix and matrix_file are mutually exclusive", ts.Key())
		}
		if ts.Machines != 0 {
			return fmt.Errorf("topology spec %s: a mix pins its own machine count; machines must be omitted", ts.Key())
		}
		if _, err := ts.mixSpecs(); err != nil {
			return fmt.Errorf("topology spec %s: %w", ts.Key(), err)
		}
	} else if ts.MatrixFile != "" {
		if ts.Builder != "" {
			return fmt.Errorf("topology spec %s: matrix_file and builder are mutually exclusive", ts.Key())
		}
		data, err := readMatrixFile(ts.matrixPath())
		if err != nil {
			return fmt.Errorf("topology spec %s: reading matrix file: %w", ts.Key(), err)
		}
		if _, err := topology.ParseMatrix(data); err != nil {
			return fmt.Errorf("topology spec %s: %w", ts.Key(), err)
		}
	} else if _, err := topology.ParseMachineKind(ts.builderOrDefault()); err != nil {
		return err
	}
	if ts.Machines < 0 {
		return fmt.Errorf("topology spec %s: machines must be >= 0, got %d", ts.Key(), ts.Machines)
	}
	if _, err := domains.Parse(ts.Domains); err != nil {
		return fmt.Errorf("topology spec %s: %w", ts.Key(), err)
	}
	if w := ts.Weights; w != nil {
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"gpu_peer", w.GPUPeer}, {"gpu_link", w.GPULink}, {"switch", w.Switch},
			{"socket", w.Socket}, {"machine", w.Machine},
		} {
			if f.v < 0 {
				return fmt.Errorf("topology spec %s: weight %s must be >= 0, got %g", ts.Key(), f.name, f.v)
			}
		}
	}
	return nil
}

// Build materializes the topology. machines is the Machines-axis value,
// overridden by the spec's own pinned count when set (a mix always pins
// its total). standalone selects the single-machine builder (no network
// root) when the effective count is <= 1 — the Table 1 / prototype
// substrate — while generated workloads always get a cluster with a
// network root, even for one machine, preserving the legacy Machines-axis
// behavior bit for bit. Mix topologies are always clusters.
func (ts TopologySpec) Build(machines int, standalone bool) (*topology.Topology, error) {
	machines = ts.EffectiveMachines(machines)
	w := topology.DefaultWeights()
	if ts.Weights != nil {
		w = *ts.Weights
	}
	switch {
	case len(ts.Mix) > 0:
		specs, err := ts.mixSpecs()
		if err != nil {
			return nil, err
		}
		return topology.HeterogeneousClusterWeights(specs, w)
	case ts.MatrixFile != "":
		data, err := readMatrixFile(ts.matrixPath())
		if err != nil {
			return nil, fmt.Errorf("sweep: topology %s: %w", ts.Key(), err)
		}
		if standalone && machines <= 1 {
			return topology.ParseMatrixWeights(data, w)
		}
		if machines < 1 {
			machines = 1
		}
		return topology.MatrixClusterWeights(data, machines, w)
	}
	kind, err := topology.ParseMachineKind(ts.builderOrDefault())
	if err != nil {
		return nil, err
	}
	if standalone && machines <= 1 {
		return topology.Machine(kind, w)
	}
	if machines < 1 {
		machines = 1
	}
	return topology.ClusterWeights(machines, kind, w), nil
}

// Validate checks a grid for the mistakes a hand-written spec file can
// make: empty-but-present axes, out-of-range values, unknown topology
// builders, and a Machines axis that conflicts with pinned topology
// machine counts. Axes left absent (nil) are fine — withDefaults fills
// them — but an explicitly empty axis ("machines": []) is an error,
// because it would silently expand to zero points.
func (g Grid) Validate() error {
	type axis struct {
		name  string
		isNil bool
		n     int
	}
	for _, a := range []axis{
		{"policies", g.Policies == nil, len(g.Policies)},
		{"machines", g.Machines == nil, len(g.Machines)},
		{"jobs", g.Jobs == nil, len(g.Jobs)},
		{"alphas_cc", g.AlphasCC == nil, len(g.AlphasCC)},
		{"thresholds", g.Thresholds == nil, len(g.Thresholds)},
		{"seeds", g.Seeds == nil, len(g.Seeds)},
		{"topologies", g.Topologies == nil, len(g.Topologies)},
		{"disciplines", g.Disciplines == nil, len(g.Disciplines)},
		{"domains", g.Domains == nil, len(g.Domains)},
	} {
		if !a.isNil && a.n == 0 {
			return fmt.Errorf("sweep: grid %q: axis %q is present but empty — omit it to use the default", g.Name, a.name)
		}
	}
	for _, m := range g.Machines {
		if m < 1 {
			return fmt.Errorf("sweep: grid %q: machines axis value %d must be >= 1", g.Name, m)
		}
	}
	for _, j := range g.Jobs {
		if j < 0 {
			return fmt.Errorf("sweep: grid %q: jobs axis value %d must be >= 0", g.Name, j)
		}
	}
	for _, a := range g.AlphasCC {
		if a != NoOverride && (a < 0 || a > 1) {
			return fmt.Errorf("sweep: grid %q: alphas_cc value %g must be in [0,1] (or %d for the engine default)", g.Name, a, NoOverride)
		}
	}
	for _, th := range g.Thresholds {
		if th != NoOverride && (th < 0 || th > 1) {
			return fmt.Errorf("sweep: grid %q: thresholds value %g must be in [0,1] (or %d for the engine default)", g.Name, th, NoOverride)
		}
	}
	for _, d := range g.Disciplines {
		if _, _, err := ParseDisciplineMode(d); err != nil {
			return fmt.Errorf("sweep: grid %q: %w", g.Name, err)
		}
		if d != "" && d != "fifo" && g.Engine != EngineSim {
			return fmt.Errorf("sweep: grid %q: discipline %q needs the sim engine — the prototype emulator has no priority queue", g.Name, d)
		}
	}
	if g.PriorityShare < 0 || g.PriorityShare > 1 {
		return fmt.Errorf("sweep: grid %q: priority_share %g outside [0,1]", g.Name, g.PriorityShare)
	}
	if g.Replicas < 0 {
		return fmt.Errorf("sweep: grid %q: replicas must be >= 0, got %d", g.Name, g.Replicas)
	}
	if g.RatePerMachine < 0 {
		return fmt.Errorf("sweep: grid %q: rate_per_machine must be >= 0, got %g", g.Name, g.RatePerMachine)
	}
	if g.SampleInterval < 0 {
		return fmt.Errorf("sweep: grid %q: sample_interval must be >= 0, got %g", g.Name, g.SampleInterval)
	}
	if g.JitterStddev < 0 {
		return fmt.Errorf("sweep: grid %q: jitter_stddev must be >= 0, got %g", g.Name, g.JitterStddev)
	}
	sharded := false
	for _, d := range g.Domains {
		sp, err := domains.Parse(d)
		if err != nil {
			return fmt.Errorf("sweep: grid %q: %w", g.Name, err)
		}
		if sp.Enabled() {
			sharded = true
		}
	}
	pinned, pinnedDomains := false, false
	for _, ts := range g.Topologies {
		if err := ts.Validate(); err != nil {
			return fmt.Errorf("sweep: grid %q: %w", g.Name, err)
		}
		if ts.pinsMachines() {
			pinned = true
		}
		if ts.Domains != "" {
			pinnedDomains = true
			sharded = true
		}
	}
	if pinned && g.Machines != nil {
		return fmt.Errorf("sweep: grid %q: a topology spec pins its machine count, so the machines axis must be omitted", g.Name)
	}
	if pinnedDomains && g.Domains != nil {
		return fmt.Errorf("sweep: grid %q: a topology spec pins its domain split, so the domains axis must be omitted", g.Name)
	}
	if sharded && (g.Engine != EngineSim || g.Source != SourceGenerated) {
		return fmt.Errorf("sweep: grid %q: sharded domains need the sim engine on generated workloads", g.Name)
	}
	return nil
}

// ParseGridSpec decodes a JSON grid spec (the format documented in
// docs/sweeps.md) and validates it. Unknown fields, malformed JSON,
// unknown enum names (policies, engine, source, topology builders) and
// out-of-range axis values are all rejected with errors that name the
// offending field.
func ParseGridSpec(data []byte) (Grid, error) {
	g, err := decodeGridSpec(data)
	if err != nil {
		return Grid{}, err
	}
	if err := g.Validate(); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// decodeGridSpec is the shared strict JSON decode behind ParseGridSpec
// and LoadGridSpec (which must anchor matrix_file resolution between
// decoding and validating, so it cannot reuse ParseGridSpec wholesale).
func decodeGridSpec(data []byte) (Grid, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("sweep: invalid grid spec: %w", err)
	}
	if dec.More() {
		return Grid{}, fmt.Errorf("sweep: invalid grid spec: trailing data after the JSON object")
	}
	return g, nil
}

// LoadGridSpec reads and parses a grid spec file. When the grid has no
// name, the file path stands in so reports stay identifiable. Relative
// matrix_file paths in the spec resolve against the spec file's directory
// (falling back to the working directory), so spec files are relocatable.
func LoadGridSpec(path string) (Grid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Grid{}, fmt.Errorf("sweep: reading grid spec: %w", err)
	}
	g, err := decodeGridSpec(data)
	if err != nil {
		return Grid{}, fmt.Errorf("%s: %w", path, err)
	}
	// Anchor matrix_file resolution before validation so the existence
	// check and the eventual Build agree on the path.
	dir := filepath.Dir(path)
	for i := range g.Topologies {
		g.Topologies[i].specDir = dir
	}
	if err := g.Validate(); err != nil {
		return Grid{}, fmt.Errorf("%s: %w", path, err)
	}
	if g.Name == "" {
		g.Name = path
	}
	return g, nil
}

// SpecJSON serializes the grid as an indented spec file — the same format
// ParseGridSpec accepts — so any named grid doubles as a template for
// ad-hoc sweeps (toposweep -list <name>).
func (g Grid) SpecJSON() ([]byte, error) {
	js, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(js, '\n'), nil
}
