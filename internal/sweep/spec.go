package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"gputopo/internal/topology"
)

// TopologySpec names the physical topology of a grid cell declaratively:
// a registered builder ("minsky", "dgx1", "pcie"), an optional machine
// count, and optional per-level distance-weight overrides. The zero value
// is the legacy default — a Minsky cluster sized by the grid's Machines
// axis (or one standalone Minsky machine for Table 1 replays).
//
// Because the spec is plain data, it can serve as a grid axis: the sweep
// engine expands Grid.Topologies like any other axis, and the spec
// round-trips through grid spec files and report artifacts.
type TopologySpec struct {
	// Builder is a name accepted by topology.ParseMachineKind; empty
	// means "minsky".
	Builder string `json:"builder,omitempty"`
	// Machines pins the machine count of this topology. 0 defers to the
	// grid's Machines axis; a grid may set one or the other, not both.
	Machines int `json:"machines,omitempty"`
	// Weights overrides the qualitative level weights (zero fields keep
	// the Figure 7 defaults).
	Weights *topology.LevelWeights `json:"weights,omitempty"`
}

// builderOrDefault returns the builder name with the empty default applied.
func (ts TopologySpec) builderOrDefault() string {
	if ts.Builder == "" {
		return topology.KindMinsky.String()
	}
	return ts.Builder
}

// Key is the compact deterministic label of the spec used in cell keys,
// CSV artifacts and diff tables: builder, then ":N" when the machine count
// is pinned, then the non-zero weight overrides in fixed field order,
// e.g. "minsky", "dgx1:2", "minsky[socket=5]".
func (ts TopologySpec) Key() string {
	var sb strings.Builder
	sb.WriteString(ts.builderOrDefault())
	if ts.Machines > 0 {
		fmt.Fprintf(&sb, ":%d", ts.Machines)
	}
	if ts.Weights != nil {
		var parts []string
		add := func(name string, v float64) {
			if v != 0 {
				parts = append(parts, fmt.Sprintf("%s=%g", name, v))
			}
		}
		add("gpupeer", ts.Weights.GPUPeer)
		add("gpulink", ts.Weights.GPULink)
		add("switch", ts.Weights.Switch)
		add("socket", ts.Weights.Socket)
		add("machine", ts.Weights.Machine)
		if len(parts) > 0 {
			sb.WriteString("[" + strings.Join(parts, ";") + "]")
		}
	}
	return sb.String()
}

// EffectiveMachines resolves the machine count of a point on this
// topology: the spec's pinned count when set, else the Machines-axis
// value.
func (ts TopologySpec) EffectiveMachines(axis int) int {
	if ts.Machines > 0 {
		return ts.Machines
	}
	return axis
}

// Validate checks the spec against the builder registry.
func (ts TopologySpec) Validate() error {
	if _, err := topology.ParseMachineKind(ts.builderOrDefault()); err != nil {
		return err
	}
	if ts.Machines < 0 {
		return fmt.Errorf("topology spec %s: machines must be >= 0, got %d", ts.Key(), ts.Machines)
	}
	if w := ts.Weights; w != nil {
		for _, f := range []struct {
			name string
			v    float64
		}{
			{"gpu_peer", w.GPUPeer}, {"gpu_link", w.GPULink}, {"switch", w.Switch},
			{"socket", w.Socket}, {"machine", w.Machine},
		} {
			if f.v < 0 {
				return fmt.Errorf("topology spec %s: weight %s must be >= 0, got %g", ts.Key(), f.name, f.v)
			}
		}
	}
	return nil
}

// Build materializes the topology. machines is the Machines-axis value,
// overridden by the spec's own pinned count when set. standalone selects
// the single-machine builder (no network root) when the effective count
// is <= 1 — the Table 1 / prototype substrate — while generated workloads
// always get a cluster with a network root, even for one machine,
// preserving the legacy Machines-axis behavior bit for bit.
func (ts TopologySpec) Build(machines int, standalone bool) (*topology.Topology, error) {
	machines = ts.EffectiveMachines(machines)
	kind, err := topology.ParseMachineKind(ts.builderOrDefault())
	if err != nil {
		return nil, err
	}
	w := topology.DefaultWeights()
	if ts.Weights != nil {
		w = *ts.Weights
	}
	if standalone && machines <= 1 {
		return topology.Machine(kind, w)
	}
	if machines < 1 {
		machines = 1
	}
	return topology.ClusterWeights(machines, kind, w), nil
}

// Validate checks a grid for the mistakes a hand-written spec file can
// make: empty-but-present axes, out-of-range values, unknown topology
// builders, and a Machines axis that conflicts with pinned topology
// machine counts. Axes left absent (nil) are fine — withDefaults fills
// them — but an explicitly empty axis ("machines": []) is an error,
// because it would silently expand to zero points.
func (g Grid) Validate() error {
	type axis struct {
		name  string
		isNil bool
		n     int
	}
	for _, a := range []axis{
		{"policies", g.Policies == nil, len(g.Policies)},
		{"machines", g.Machines == nil, len(g.Machines)},
		{"jobs", g.Jobs == nil, len(g.Jobs)},
		{"alphas_cc", g.AlphasCC == nil, len(g.AlphasCC)},
		{"thresholds", g.Thresholds == nil, len(g.Thresholds)},
		{"seeds", g.Seeds == nil, len(g.Seeds)},
		{"topologies", g.Topologies == nil, len(g.Topologies)},
	} {
		if !a.isNil && a.n == 0 {
			return fmt.Errorf("sweep: grid %q: axis %q is present but empty — omit it to use the default", g.Name, a.name)
		}
	}
	for _, m := range g.Machines {
		if m < 1 {
			return fmt.Errorf("sweep: grid %q: machines axis value %d must be >= 1", g.Name, m)
		}
	}
	for _, j := range g.Jobs {
		if j < 0 {
			return fmt.Errorf("sweep: grid %q: jobs axis value %d must be >= 0", g.Name, j)
		}
	}
	for _, a := range g.AlphasCC {
		if a != NoOverride && (a < 0 || a > 1) {
			return fmt.Errorf("sweep: grid %q: alphas_cc value %g must be in [0,1] (or %d for the engine default)", g.Name, a, NoOverride)
		}
	}
	for _, th := range g.Thresholds {
		if th != NoOverride && (th < 0 || th > 1) {
			return fmt.Errorf("sweep: grid %q: thresholds value %g must be in [0,1] (or %d for the engine default)", g.Name, th, NoOverride)
		}
	}
	if g.Replicas < 0 {
		return fmt.Errorf("sweep: grid %q: replicas must be >= 0, got %d", g.Name, g.Replicas)
	}
	if g.RatePerMachine < 0 {
		return fmt.Errorf("sweep: grid %q: rate_per_machine must be >= 0, got %g", g.Name, g.RatePerMachine)
	}
	if g.SampleInterval < 0 {
		return fmt.Errorf("sweep: grid %q: sample_interval must be >= 0, got %g", g.Name, g.SampleInterval)
	}
	if g.JitterStddev < 0 {
		return fmt.Errorf("sweep: grid %q: jitter_stddev must be >= 0, got %g", g.Name, g.JitterStddev)
	}
	pinned := false
	for _, ts := range g.Topologies {
		if err := ts.Validate(); err != nil {
			return fmt.Errorf("sweep: grid %q: %w", g.Name, err)
		}
		if ts.Machines > 0 {
			pinned = true
		}
	}
	if pinned && g.Machines != nil {
		return fmt.Errorf("sweep: grid %q: a topology spec pins its machine count, so the machines axis must be omitted", g.Name)
	}
	return nil
}

// ParseGridSpec decodes a JSON grid spec (the format documented in
// docs/sweeps.md) and validates it. Unknown fields, malformed JSON,
// unknown enum names (policies, engine, source, topology builders) and
// out-of-range axis values are all rejected with errors that name the
// offending field.
func ParseGridSpec(data []byte) (Grid, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("sweep: invalid grid spec: %w", err)
	}
	if dec.More() {
		return Grid{}, fmt.Errorf("sweep: invalid grid spec: trailing data after the JSON object")
	}
	if err := g.Validate(); err != nil {
		return Grid{}, err
	}
	return g, nil
}

// LoadGridSpec reads and parses a grid spec file. When the grid has no
// name, the file path stands in so reports stay identifiable.
func LoadGridSpec(path string) (Grid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Grid{}, fmt.Errorf("sweep: reading grid spec: %w", err)
	}
	g, err := ParseGridSpec(data)
	if err != nil {
		return Grid{}, fmt.Errorf("%s: %w", path, err)
	}
	if g.Name == "" {
		g.Name = path
	}
	return g, nil
}

// SpecJSON serializes the grid as an indented spec file — the same format
// ParseGridSpec accepts — so any named grid doubles as a template for
// ad-hoc sweeps (toposweep -list <name>).
func (g Grid) SpecJSON() ([]byte, error) {
	js, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(js, '\n'), nil
}
