package serveapi

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
)

func boolp(b bool) *bool { return &b }

// TestWireRoundTrip marshals every wire type, unmarshals it back, and
// re-marshals: both the value and the bytes must be stable, so the JSON
// layer can never silently drop or rename a field.
func TestWireRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		v    any
		new  func() any
	}{
		{"job_request", &JobRequest{
			ID: "j1", Model: "GoogLeNet", BatchSize: 4, GPUs: 2, MinUtility: 0.5,
			Iterations: 1000, SingleNode: boolp(false), AntiCollocate: true, ModelParallel: true,
		}, func() any { return &JobRequest{} }},
		{"job_request_zero", &JobRequest{GPUs: 1}, func() any { return &JobRequest{} }},
		{"job_spec", &JobSpec{
			JobRequest: JobRequest{ID: "j2", Model: "AlexNet", BatchSize: 1, GPUs: 4, SingleNode: boolp(true)},
			Arrival:    12.5,
		}, func() any { return &JobSpec{} }},
		{"job_response_placed", &JobResponse{
			ID: "j1", Status: "placed", GPUs: []int{0, 1}, Utility: 0.875, SLOViolated: true, Time: 3.25,
		}, func() any { return &JobResponse{} }},
		{"job_response_queued", &JobResponse{
			ID: "j2", Status: "queued", Reason: "no-capacity", Time: 4.5, QueuePosition: 3,
		}, func() any { return &JobResponse{} }},
		{"release_response", &ReleaseResponse{
			ID: "j1", Status: "released", Unblocked: []string{"j2", "j3"},
		}, func() any { return &ReleaseResponse{} }},
		{"decision_record", &DecisionRecord{
			Seq: 7, Time: 1.5, JobID: "j1", Placed: true, GPUs: []int{2, 3},
			Utility: 0.75, SLOViolated: true, Postponements: 2,
		}, func() any { return &DecisionRecord{} }},
		{"decision_postponed", &DecisionRecord{
			Seq: 8, Time: 1.5, JobID: "j2", Reason: "low-utility",
		}, func() any { return &DecisionRecord{} }},
		{"decisions_response", &DecisionsResponse{
			Decisions: []DecisionRecord{{Seq: 5, JobID: "a", Placed: true, GPUs: []int{0}}},
			NextAfter: 5, OldestSeq: 3, LatestSeq: 9, Truncated: true,
		}, func() any { return &DecisionsResponse{} }},
		{"state_response", &StateResponse{
			Topology: "minsky:2", Policy: "TOPO-AWARE-P", Machines: 2, GPUs: 8, FreeGPUs: 3,
			UptimeSec: 9.5, ClockSec: 8.25, Durable: true, Draining: true, MaxQueue: 64,
			Running:   []RunningEntry{{ID: "j1", GPUs: []int{0, 1}}},
			Queue:     []QueuedEntry{{ID: "j2", GPUs: 4, MinUtility: 0.5, Arrival: 2.5}},
			Bandwidth: []BandwidthEntry{{Machine: 0, FreeGBs: 64}},
			Stats: SchedStats{
				Decisions: 9, Placements: 4, Postponements: 5, SLOViolations: 1,
				GateSkips: 2, WakeSkips: 3, MeanDecisionUs: 12.5, MaxDecisionUs: 80, TotalDecisionMs: 0.5,
			},
			Decisions: 9, Fragments: 1.25, Discipline: "fifo-arrival",
			PlaceCache: &PlaceCacheStats{Hits: 12, Misses: 7, Evictions: 1},
		}, func() any { return &StateResponse{} }},
		{"state_response_sharded", &StateResponse{
			Topology: "minsky:4/domains[hash:2]", Policy: "TOPO-AWARE-P", Machines: 4, GPUs: 16,
			Log: &LogStats{
				Records: 40, SinceSnapshot: 8, BytesSinceSnapshot: 4096,
				Snapshots: 2, ReplayedAtBoot: 11, Syncs: 13,
			},
			PlaceCache: &PlaceCacheStats{Hits: 30, Misses: 14, Evictions: 2},
			Domains: []DomainState{
				{Domain: 0, Topology: "minsky:2", Machines: 2, GPUs: 8, FreeGPUs: 5,
					Running: 2, Queued: 1, Decisions: 20,
					Log:        &LogStats{Records: 20, SinceSnapshot: 4, BytesSinceSnapshot: 2048, Snapshots: 1, ReplayedAtBoot: 6, Syncs: 7},
					PlaceCache: &PlaceCacheStats{Hits: 20, Misses: 9, Evictions: 2}},
				{Domain: 1, Topology: "minsky:2", Machines: 2, GPUs: 8, FreeGPUs: 8},
			},
		}, func() any { return &StateResponse{} }},
		{"error_response", &ErrorResponse{
			Error: ErrorBody{Code: CodeJobNotFound, Message: `no job "x"`},
		}, func() any { return &ErrorResponse{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			first, err := json.Marshal(tc.v)
			if err != nil {
				t.Fatal(err)
			}
			back := tc.new()
			if err := json.Unmarshal(first, back); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tc.v, back) {
				t.Fatalf("value drifted:\n want %+v\n got  %+v", tc.v, back)
			}
			second, err := json.Marshal(back)
			if err != nil {
				t.Fatal(err)
			}
			if string(first) != string(second) {
				t.Fatalf("bytes drifted:\n want %s\n got  %s", first, second)
			}
		})
	}
}

// TestJobSpecJobRoundTrip pins JobSpec.Job ↔ SpecOf as exact inverses:
// the event log stores specs, and replay must rebuild the same job.
func TestJobSpecJobRoundTrip(t *testing.T) {
	specs := []JobSpec{
		{JobRequest: JobRequest{ID: "a", Model: "AlexNet", BatchSize: 1, GPUs: 1, SingleNode: boolp(true)}, Arrival: 0},
		{JobRequest: JobRequest{ID: "b", Model: "GoogLeNet", BatchSize: 4, GPUs: 2, MinUtility: 0.5,
			Iterations: 1234, SingleNode: boolp(true)}, Arrival: 7.5},
		{JobRequest: JobRequest{ID: "c", Model: "CaffeRef", BatchSize: 16, GPUs: 4, MinUtility: 0.3,
			SingleNode: boolp(false), AntiCollocate: true}, Arrival: 99},
		{JobRequest: JobRequest{ID: "d", Model: "AlexNet", BatchSize: 8, GPUs: 2, SingleNode: boolp(true),
			ModelParallel: true}, Arrival: 1},
	}
	for _, spec := range specs {
		j, err := spec.Job()
		if err != nil {
			t.Fatalf("%s: %v", spec.ID, err)
		}
		got := SpecOf(j)
		// Job() fills defaults (iterations); apply them to the expectation.
		want := spec
		if want.Iterations == 0 {
			want.Iterations = perfmodel.DefaultIterations
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: spec drifted through job:\n want %+v\n got  %+v", spec.ID, want, got)
		}
	}
}

// TestJobSpecDefaults pins the server-side defaulting: empty model,
// zero batch and the SingleNode default of job.New.
func TestJobSpecDefaults(t *testing.T) {
	j, err := JobSpec{JobRequest: JobRequest{ID: "d", GPUs: 1}}.Job()
	if err != nil {
		t.Fatal(err)
	}
	if j.Model != perfmodel.AlexNet || j.BatchSize != 1 || !j.SingleNode {
		t.Fatalf("defaults not applied: %+v", j)
	}
	if _, err := (JobSpec{JobRequest: JobRequest{ID: "bad", Model: "ResNet", GPUs: 1}}).Job(); err == nil {
		t.Fatal("unknown model accepted")
	}
	if _, err := (JobSpec{JobRequest: JobRequest{ID: "bad", GPUs: 0}}).Job(); err == nil {
		t.Fatal("zero GPUs accepted")
	}
}

// TestJobSpecOfValidatesBack checks SpecOf output rebuilds a valid job
// for a job constructed through the job package directly.
func TestJobSpecOfValidatesBack(t *testing.T) {
	orig := job.New("x", perfmodel.GoogLeNet, 4, 2, 0.5, 3.25)
	orig.Iterations = 777
	rebuilt, err := SpecOf(orig).Job()
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.ID != orig.ID || rebuilt.Model != orig.Model || rebuilt.BatchSize != orig.BatchSize ||
		rebuilt.GPUs != orig.GPUs || rebuilt.MinUtility != orig.MinUtility ||
		rebuilt.Arrival != orig.Arrival || rebuilt.Iterations != orig.Iterations ||
		rebuilt.SingleNode != orig.SingleNode {
		t.Fatalf("rebuilt job drifted:\n want %+v\n got  %+v", orig, rebuilt)
	}
}

// TestErrorEnvelopeShape pins the envelope's exact JSON shape — clients
// and the docs both promise {"error":{"code","message"}}.
func TestErrorEnvelopeShape(t *testing.T) {
	js, err := json.Marshal(Errorf(CodeQueueFull, "queue depth %d at limit", 64))
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"queue_full","message":"queue depth 64 at limit"}}`
	if string(js) != want {
		t.Fatalf("envelope shape:\n want %s\n got  %s", want, js)
	}
}

// TestWriteHelpers exercises the HTTP writers: content type, status,
// envelope and the Retry-After header.
func TestWriteHelpers(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, 404, CodeJobNotFound, "no job %q", "x")
	if rec.Code != 404 || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("WriteError: %d %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	var env ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeJobNotFound || !strings.Contains(env.Error.Message, `"x"`) {
		t.Fatalf("WriteError envelope: %+v", env)
	}

	rec = httptest.NewRecorder()
	WriteRetryAfter(rec, 0, "full")
	if rec.Code != 429 || rec.Header().Get("Retry-After") != "1" {
		t.Fatalf("WriteRetryAfter: %d Retry-After=%q", rec.Code, rec.Header().Get("Retry-After"))
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != CodeQueueFull {
		t.Fatalf("WriteRetryAfter code: %+v", env)
	}

	rec = httptest.NewRecorder()
	WriteJSON(rec, JobResponse{ID: "a", Status: "placed"})
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"status": "placed"`) {
		t.Fatalf("WriteJSON: %d %s", rec.Code, rec.Body.String())
	}
}

// TestClearVolatile zeroes exactly the restart-variant fields.
func TestClearVolatile(t *testing.T) {
	s := StateResponse{
		UptimeSec: 5, ClockSec: 6, FreeGPUs: 3,
		Stats:      SchedStats{Decisions: 9, MeanDecisionUs: 1, MaxDecisionUs: 2, TotalDecisionMs: 3},
		Log:        &LogStats{Records: 4, Syncs: 2},
		PlaceCache: &PlaceCacheStats{Hits: 5, Misses: 3},
		Domains: []DomainState{
			{Domain: 0, GPUs: 8, Log: &LogStats{Records: 2}, PlaceCache: &PlaceCacheStats{Hits: 1}},
		},
	}
	s.ClearVolatile()
	if s.UptimeSec != 0 || s.ClockSec != 0 || s.Stats.MeanDecisionUs != 0 ||
		s.Stats.MaxDecisionUs != 0 || s.Stats.TotalDecisionMs != 0 {
		t.Fatalf("volatile fields survive: %+v", s)
	}
	// Log gauges are per-process (sync and snapshot counters restart at
	// zero), so restart byte-pinning must not see them.
	if s.Log != nil || s.Domains[0].Log != nil {
		t.Fatalf("log gauges survive: %+v", s)
	}
	// The placement cache replays cold after a restart, so its counters
	// are volatile too — top-level and per-domain.
	if s.PlaceCache != nil || s.Domains[0].PlaceCache != nil {
		t.Fatalf("place-cache counters survive: %+v", s)
	}
	if s.FreeGPUs != 3 || s.Stats.Decisions != 9 || s.Domains[0].GPUs != 8 {
		t.Fatalf("durable fields clobbered: %+v", s)
	}
}
