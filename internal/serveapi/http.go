package serveapi

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// WriteJSON writes v as an indented JSON 200 response (indented so curl
// output stays readable; the byte cost is irrelevant at API sizes).
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// WriteError writes the uniform error envelope with the HTTP status.
func WriteError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(Errorf(code, format, args...))
}

// WriteRetryAfter writes a 429 queue_full envelope with the Retry-After
// header admission control promises (seconds, rounded up to at least 1).
func WriteRetryAfter(w http.ResponseWriter, seconds int, format string, args ...any) {
	if seconds < 1 {
		seconds = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(seconds))
	WriteError(w, http.StatusTooManyRequests, CodeQueueFull, format, args...)
}
