// Package serveapi defines the wire types of toposerve's /v1 HTTP API:
// every request, response and error body exchanged between the server
// (internal/serve), the typed Go client (internal/serveapi/client), the
// durable event log (internal/eventlog) and the load generator
// (cmd/topoload). Handlers never hand-roll JSON — they marshal these
// types — so the wire format is defined exactly once and exercised from
// both sides by the round-trip tests.
//
// Errors are uniform across every endpoint: a non-2xx response always
// carries the envelope
//
//	{"error": {"code": "job_not_found", "message": "..."}}
//
// with a stable machine-readable code (the Code* constants) and a
// human-readable message. 429 responses additionally set a Retry-After
// header (seconds).
package serveapi

import (
	"fmt"

	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
)

// Error codes carried in the error envelope. Clients branch on these,
// never on message text.
const (
	// CodeInvalidJSON: the request body was not valid JSON for the
	// endpoint's request type (400).
	CodeInvalidJSON = "invalid_json"
	// CodeInvalidJob: the job definition failed validation — unknown
	// model, non-positive GPU count, conflicting constraints (400).
	CodeInvalidJob = "invalid_job"
	// CodeJobExists: a job with the submitted ID is already queued or
	// running (409).
	CodeJobExists = "job_exists"
	// CodeJobNotFound: no queued or running job has the ID (404).
	CodeJobNotFound = "job_not_found"
	// CodeQueueFull: admission control rejected the submission because
	// the wait queue is at its depth limit; retry after the Retry-After
	// header's delay (429).
	CodeQueueFull = "queue_full"
	// CodeDraining: the server is shutting down gracefully and no longer
	// admits writes (503).
	CodeDraining = "draining"
	// CodeInvalidParam: a query parameter (limit, after) failed to parse
	// or was out of range (400).
	CodeInvalidParam = "invalid_param"
	// CodeInternal: an unexpected server-side failure (500).
	CodeInternal = "internal"
)

// ErrorBody is the inner error object of the envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the uniform error envelope of every non-2xx response.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// JobRequest is the POST /v1/jobs payload. Field names mirror the
// prototype's JSON manifests (§5.1). Zero values default server-side:
// empty model → AlexNet, zero batch size → 1, empty ID → generated.
type JobRequest struct {
	ID            string  `json:"id,omitempty"`
	Model         string  `json:"model,omitempty"`
	BatchSize     int     `json:"batch_size,omitempty"`
	GPUs          int     `json:"gpus"`
	MinUtility    float64 `json:"min_utility,omitempty"`
	Iterations    int     `json:"iterations,omitempty"`
	SingleNode    *bool   `json:"single_node,omitempty"`
	AntiCollocate bool    `json:"anti_collocate,omitempty"`
	ModelParallel bool    `json:"model_parallel,omitempty"`
	// Priority ranks the job under the priority queue disciplines; with
	// preemption enabled a positive-priority job may evict strictly
	// lower-priority running jobs. 0 (the default) is the ordinary
	// training class.
	Priority int `json:"priority,omitempty"`
}

// JobSpec is a fully resolved job as the server accepted it: the request
// fields plus the arrival stamp the scheduler saw. It is the submit
// record of the event log and the queued-job entry of snapshots, and
// must rebuild the exact job on replay.
type JobSpec struct {
	JobRequest
	Arrival float64 `json:"arrival_s"`
}

// Job materializes the spec into a scheduler job, applying the same
// defaults the live submit path applies. The ID must already be
// resolved (non-empty).
func (s JobSpec) Job() (*job.Job, error) {
	model := perfmodel.AlexNet
	if s.Model != "" {
		var err error
		if model, err = perfmodel.ParseNN(s.Model); err != nil {
			return nil, err
		}
	}
	batch := s.BatchSize
	if batch == 0 {
		batch = 1
	}
	j := job.New(s.ID, model, batch, s.GPUs, s.MinUtility, s.Arrival)
	if s.Iterations > 0 {
		j.Iterations = s.Iterations
	}
	if s.SingleNode != nil {
		j.SingleNode = *s.SingleNode
	}
	j.AntiCollocate = s.AntiCollocate
	if s.ModelParallel {
		j.Parallelism = perfmodel.ModelParallel
	}
	j.Priority = s.Priority
	if err := j.Validate(); err != nil {
		return nil, err
	}
	return j, nil
}

// SpecOf captures a scheduler job back into its wire spec — the inverse
// of JobSpec.Job, used when the server journals an accepted job.
func SpecOf(j *job.Job) JobSpec {
	single := j.SingleNode
	return JobSpec{
		JobRequest: JobRequest{
			ID:            j.ID,
			Model:         j.Model.String(),
			BatchSize:     j.BatchSize,
			GPUs:          j.GPUs,
			MinUtility:    j.MinUtility,
			Iterations:    j.Iterations,
			SingleNode:    &single,
			AntiCollocate: j.AntiCollocate,
			ModelParallel: j.Parallelism == perfmodel.ModelParallel,
			Priority:      j.Priority,
		},
		Arrival: j.Arrival,
	}
}

// JobResponse answers POST /v1/jobs with the submitted job's decision.
type JobResponse struct {
	ID            string  `json:"id"`
	Status        string  `json:"status"` // "placed" or "queued"
	GPUs          []int   `json:"gpus,omitempty"`
	Utility       float64 `json:"utility,omitempty"`
	Reason        string  `json:"reason,omitempty"`
	SLOViolated   bool    `json:"slo_violated,omitempty"`
	Time          float64 `json:"time_s"`
	QueuePosition int     `json:"queue_position,omitempty"` // 1-based when queued
}

// ReleaseResponse answers DELETE /v1/jobs/{id}.
type ReleaseResponse struct {
	ID string `json:"id"`
	// Status is "released" (the job was running; its GPUs are free) or
	// "withdrawn" (it was still queued).
	Status string `json:"status"`
	// Unblocked lists jobs the release let the scheduler place — the
	// wake-up index resolves exactly these instead of walking the queue.
	Unblocked []string `json:"unblocked,omitempty"`
}

// DecisionRecord is one logged scheduling decision: a placement, a
// postponement, or — under preemption — an eviction notice for a running
// job displaced by a higher-priority placement.
type DecisionRecord struct {
	Seq           int     `json:"seq"`
	Time          float64 `json:"time_s"`
	JobID         string  `json:"job_id"`
	Placed        bool    `json:"placed"`
	GPUs          []int   `json:"gpus,omitempty"`
	Utility       float64 `json:"utility,omitempty"`
	Reason        string  `json:"reason,omitempty"`
	SLOViolated   bool    `json:"slo_violated,omitempty"`
	Postponements int     `json:"postponements,omitempty"`
	// Evicted marks a preemption notice: JobID was evicted from GPUs (the
	// freed positions) to make room for PreemptedBy, and is back in the
	// wait queue. Clients watching /v1/decisions learn about displaced
	// jobs from exactly these records.
	Evicted     bool   `json:"evicted,omitempty"`
	PreemptedBy string `json:"preempted_by,omitempty"`
}

// DecisionsResponse answers GET /v1/decisions?after=S&limit=N: records
// with seq > after, oldest first, at most limit of them. Seq is
// monotonic from 1, so a client pages forward by passing the previous
// response's NextAfter. The ring holds a bounded window — when the
// cursor points below its oldest surviving record, Truncated reports
// the gap explicitly instead of silently skipping it.
type DecisionsResponse struct {
	Decisions []DecisionRecord `json:"decisions"`
	// NextAfter is the cursor for the next page: the seq of the last
	// returned record, or the request's after when the page is empty.
	NextAfter int `json:"next_after"`
	// OldestSeq and LatestSeq bound the ring's surviving window (both 0
	// when no decision was ever logged).
	OldestSeq int `json:"oldest_seq,omitempty"`
	LatestSeq int `json:"latest_seq,omitempty"`
	// Truncated is true when records in (after, OldestSeq) have been
	// dropped from the ring — the client's cursor missed them.
	Truncated bool `json:"truncated,omitempty"`
}

// StateResponse is GET /v1/state: a full snapshot of the cluster and the
// scheduler. UptimeSec and ClockSec are volatile (they restart with the
// process); everything else is durable state the event log reconstructs
// on recovery.
type StateResponse struct {
	Topology   string           `json:"topology"`
	Policy     string           `json:"policy"`
	Machines   int              `json:"machines"`
	GPUs       int              `json:"gpus"`
	FreeGPUs   int              `json:"free_gpus"`
	UptimeSec  float64          `json:"uptime_s"`
	ClockSec   float64          `json:"clock_s"`
	Durable    bool             `json:"durable"`
	Draining   bool             `json:"draining,omitempty"`
	MaxQueue   int              `json:"max_queue,omitempty"`
	Running    []RunningEntry   `json:"running"`
	Queue      []QueuedEntry    `json:"queue"`
	Stats      SchedStats       `json:"stats"`
	Bandwidth  []BandwidthEntry `json:"bus_bandwidth,omitempty"`
	Decisions  int              `json:"decisions_logged"`
	Fragments  float64          `json:"fragmentation"`
	Discipline string           `json:"queue_discipline"`
	// Preemption reports whether topology-aware preemption is enabled.
	Preemption bool `json:"preemption,omitempty"`
	// Log surfaces the event log's compaction metrics (nil when the
	// server is in-memory only). Operational and volatile: a restart
	// resets the counters.
	Log *LogStats `json:"log,omitempty"`
	// Domains lists per-domain summaries when the server runs sharded
	// multi-domain scheduling (one core and one event log per domain);
	// absent on a single-core server. The top-level fields aggregate
	// across domains.
	Domains []DomainState `json:"domains,omitempty"`
	// PlaceCache is the placement-decision cache's traffic (nil when the
	// cache is disabled). Volatile: a recovery replays the log against a
	// cold cache, so the counters — unlike every SchedStats counter — are
	// not reproduced across a restart.
	PlaceCache *PlaceCacheStats `json:"place_cache,omitempty"`
}

// PlaceCacheStats is the placement cache's hit/miss/eviction gauge set.
type PlaceCacheStats struct {
	Hits      int `json:"hits"`
	Misses    int `json:"misses"`
	Evictions int `json:"evictions"`
}

// LogStats is the event log's operational gauge set: how much history
// has accumulated since the last snapshot compaction, and how the
// group-commit batching is amortizing fsyncs.
type LogStats struct {
	// Records is the total record count currently in the log file.
	Records int `json:"records"`
	// SinceSnapshot counts records appended since the last snapshot
	// rewrite — the replay bound a restart would pay right now.
	SinceSnapshot int `json:"records_since_snapshot"`
	// BytesSinceSnapshot is the on-disk size of those records.
	BytesSinceSnapshot int64 `json:"bytes_since_snapshot"`
	// Snapshots counts snapshot rewrites performed by this process.
	Snapshots int `json:"snapshots"`
	// ReplayedAtBoot is the number of log records replayed when this
	// process started.
	ReplayedAtBoot int `json:"replayed_at_boot"`
	// Syncs counts fsyncs issued (group commits plus rewrites); with
	// fsync batching enabled this grows slower than the batch count.
	Syncs int `json:"syncs"`
}

// DomainState summarizes one scheduling domain of a sharded server.
type DomainState struct {
	Domain    int    `json:"domain"`
	Topology  string `json:"topology"`
	Machines  int    `json:"machines"`
	GPUs      int    `json:"gpus"`
	FreeGPUs  int    `json:"free_gpus"`
	Running   int    `json:"running"`
	Queued    int    `json:"queued"`
	Decisions int    `json:"decisions_logged"`
	// Log is the domain's own event log gauge (each domain journals and
	// replays independently); nil when in-memory.
	Log *LogStats `json:"log,omitempty"`
	// PlaceCache is the domain core's own cache traffic; volatile like
	// the top-level gauge.
	PlaceCache *PlaceCacheStats `json:"place_cache,omitempty"`
}

// RunningEntry is one running job in the state snapshot.
type RunningEntry struct {
	ID   string `json:"id"`
	GPUs []int  `json:"gpus"`
}

// QueuedEntry is one waiting job in the state snapshot.
type QueuedEntry struct {
	ID         string  `json:"id"`
	GPUs       int     `json:"gpus"`
	MinUtility float64 `json:"min_utility"`
	Arrival    float64 `json:"arrival_s"`
	Priority   int     `json:"priority,omitempty"`
}

// BandwidthEntry is one machine's free shared-bus bandwidth.
type BandwidthEntry struct {
	Machine int     `json:"machine"`
	FreeGBs float64 `json:"free_gbs"`
}

// SchedStats mirrors schedcore.Stats on the wire. The *DecisionUs/Ms
// fields measure real CPU time and are volatile across a replay; the
// counters are deterministic and must survive recovery exactly.
type SchedStats struct {
	Decisions       int     `json:"decisions"`
	Placements      int     `json:"placements"`
	Postponements   int     `json:"postponements"`
	SLOViolations   int     `json:"slo_violations"`
	GateSkips       int     `json:"gate_skips"`
	WakeSkips       int     `json:"wake_skips"`
	Preemptions     int     `json:"preemptions,omitempty"`
	Evictions       int     `json:"evictions,omitempty"`
	MeanDecisionUs  float64 `json:"mean_decision_us"`
	MaxDecisionUs   float64 `json:"max_decision_us"`
	TotalDecisionMs float64 `json:"total_decision_ms"`
}

// ClearVolatile zeroes the fields that legitimately differ across a
// restart — process uptime, the wall clock, the decision-latency
// measurements (a replay re-runs the placement policies, reproducing
// every counter but not the nanoseconds they took), and the log gauges
// (sync and snapshot counters are per-process). The kill-and-restart
// e2e pins everything that remains byte-for-byte.
func (s *StateResponse) ClearVolatile() {
	s.UptimeSec = 0
	s.ClockSec = 0
	s.Stats.MeanDecisionUs = 0
	s.Stats.MaxDecisionUs = 0
	s.Stats.TotalDecisionMs = 0
	s.Log = nil
	s.PlaceCache = nil
	for i := range s.Domains {
		s.Domains[i].Log = nil
		s.Domains[i].PlaceCache = nil
	}
}

// Errorf builds an error envelope.
func Errorf(code, format string, args ...any) ErrorResponse {
	return ErrorResponse{Error: ErrorBody{Code: code, Message: fmt.Sprintf(format, args...)}}
}
