package client

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"gputopo/internal/serveapi"
)

// SubmitJob posts a job and returns its decision (placed or queued).
// Admission-control 429s are retried per the client's budget before the
// final *APIError (code queue_full) surfaces.
func (c *Client) SubmitJob(ctx context.Context, req serveapi.JobRequest) (*serveapi.JobResponse, error) {
	var out serveapi.JobResponse
	if err := c.doJSON(ctx, "POST", "/v1/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ReleaseJob releases a running job (freeing its GPUs) or withdraws a
// queued one. Unknown IDs return an *APIError with code job_not_found.
func (c *Client) ReleaseJob(ctx context.Context, id string) (*serveapi.ReleaseResponse, error) {
	var out serveapi.ReleaseResponse
	if err := c.doJSON(ctx, "DELETE", "/v1/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Decisions pages the decision log: records with seq > after, oldest
// first, at most limit (limit <= 0 requests the server default). Page
// forward by passing the previous response's NextAfter; check Truncated
// to detect ring drop-off.
func (c *Client) Decisions(ctx context.Context, after, limit int) (*serveapi.DecisionsResponse, error) {
	q := url.Values{}
	if after > 0 {
		q.Set("after", strconv.Itoa(after))
	}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	path := "/v1/decisions"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out serveapi.DecisionsResponse
	if err := c.doJSON(ctx, "GET", path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AllDecisions follows the cursor from after until the log is drained,
// reporting whether the ring truncated any records the cursor expected.
func (c *Client) AllDecisions(ctx context.Context, after int) ([]serveapi.DecisionRecord, bool, error) {
	var all []serveapi.DecisionRecord
	truncated := false
	for {
		page, err := c.Decisions(ctx, after, 0)
		if err != nil {
			return all, truncated, err
		}
		truncated = truncated || page.Truncated
		all = append(all, page.Decisions...)
		if len(page.Decisions) == 0 || page.NextAfter <= after {
			return all, truncated, nil
		}
		after = page.NextAfter
	}
}

// State fetches the full cluster + scheduler snapshot.
func (c *Client) State(ctx context.Context) (*serveapi.StateResponse, error) {
	var out serveapi.StateResponse
	if err := c.doJSON(ctx, "GET", "/v1/state", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, "GET", c.base+"/healthz", nil)
	if err != nil {
		return err
	}
	c.requests.Add(1)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("toposerve: healthz returned %d", resp.StatusCode)
	}
	return nil
}
