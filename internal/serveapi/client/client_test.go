package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"gputopo/internal/serveapi"
)

// TestRetryOn429 pins the 429 path: the client must honor Retry-After,
// retry within its budget and count the retries.
func TestRetryOn429(t *testing.T) {
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		if attempts < 3 {
			serveapi.WriteRetryAfter(w, 1, "queue full")
			return
		}
		serveapi.WriteJSON(w, serveapi.JobResponse{ID: "j1", Status: "queued"})
	}))
	defer ts.Close()

	c := New(ts.URL, WithMaxRetries(5))
	c.MaxRetryWait = 10 * time.Millisecond // don't actually sleep 1s in tests
	resp, err := c.SubmitJob(context.Background(), serveapi.JobRequest{ID: "j1", GPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != "queued" || attempts != 3 {
		t.Fatalf("status %q after %d attempts", resp.Status, attempts)
	}
	if _, retries := c.Stats(); retries != 2 {
		t.Fatalf("retries429 = %d, want 2", retries)
	}
}

// TestRetryBudgetExhausted: a server that never admits must surface the
// queue_full APIError after MaxRetries.
func TestRetryBudgetExhausted(t *testing.T) {
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		serveapi.WriteRetryAfter(w, 1, "queue depth 64 at limit 64")
	}))
	defer ts.Close()

	c := New(ts.URL, WithMaxRetries(2))
	c.MaxRetryWait = time.Millisecond
	_, err := c.SubmitJob(context.Background(), serveapi.JobRequest{ID: "j1", GPUs: 1})
	if !IsCode(err, serveapi.CodeQueueFull) {
		t.Fatalf("want queue_full APIError, got %v", err)
	}
	var ae *APIError
	if !errorsAs(err, &ae) || ae.Status != 429 || ae.RetryAfter != time.Second {
		t.Fatalf("APIError fields: %+v", ae)
	}
	if attempts != 3 { // initial + 2 retries
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func errorsAs(err error, out **APIError) bool {
	ae, ok := err.(*APIError)
	if ok {
		*out = ae
	}
	return ok
}

// TestAPIErrorDecoding: envelope codes surface; non-envelope bodies
// degrade to code "unknown".
func TestAPIErrorDecoding(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs/missing":
			serveapi.WriteError(w, 404, serveapi.CodeJobNotFound, "no job")
		default:
			http.Error(w, "bare text", 500)
		}
	}))
	defer ts.Close()

	c := New(ts.URL)
	_, err := c.ReleaseJob(context.Background(), "missing")
	if !IsCode(err, serveapi.CodeJobNotFound) {
		t.Fatalf("want job_not_found, got %v", err)
	}
	_, err = c.State(context.Background())
	var ae *APIError
	if !errorsAs(err, &ae) || ae.Code != "unknown" || ae.Status != 500 {
		t.Fatalf("bare-body error: %v", err)
	}
}

// TestContextCancelDuringRetry: a canceled context interrupts the retry
// sleep instead of blocking out the full Retry-After.
func TestContextCancelDuringRetry(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		serveapi.WriteRetryAfter(w, 30, "forever full")
	}))
	defer ts.Close()

	c := New(ts.URL, WithMaxRetries(1))
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.SubmitJob(ctx, serveapi.JobRequest{ID: "j", GPUs: 1})
	if err == nil || time.Since(start) > 2*time.Second {
		t.Fatalf("cancel did not interrupt retry sleep: err=%v after %v", err, time.Since(start))
	}
}

// TestDecisionsPaging drives AllDecisions over a 3-page stub and checks
// cursor propagation and truncation reporting.
func TestDecisionsPaging(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		after, _ := strconv.Atoi(r.URL.Query().Get("after"))
		resp := serveapi.DecisionsResponse{NextAfter: after, OldestSeq: 3, LatestSeq: 9}
		if after < 3 {
			resp.Truncated = true
			after = 2 // records 1-2 dropped from the ring
		}
		for seq := after + 1; seq <= 9 && len(resp.Decisions) < 3; seq++ {
			resp.Decisions = append(resp.Decisions, serveapi.DecisionRecord{Seq: seq, JobID: "j"})
			resp.NextAfter = seq
		}
		serveapi.WriteJSON(w, resp)
	}))
	defer ts.Close()

	all, truncated, err := New(ts.URL).AllDecisions(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Fatal("truncation not reported")
	}
	if len(all) != 7 || all[0].Seq != 3 || all[6].Seq != 9 {
		t.Fatalf("paged %d records: %+v", len(all), all)
	}
}

// TestHealth checks the non-JSON healthz path.
func TestHealth(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("ok\n"))
	}))
	defer ts.Close()
	if err := New(ts.URL).Health(context.Background()); err != nil {
		t.Fatal(err)
	}
}
