// Package client is the typed Go client of toposerve's /v1 API. It
// speaks only the wire types of internal/serveapi — every request and
// response marshals through the same structs the server uses, so the
// e2e tests and the load generator exercise the wire format from both
// sides.
//
// Every call takes a context (set deadlines there); 429 queue_full
// responses are retried automatically with the server's Retry-After
// delay (capped, with exponential backoff as the fallback) up to
// MaxRetries attempts. Any other non-2xx response is returned as an
// *APIError carrying the envelope's machine-readable code.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"gputopo/internal/serveapi"
)

// APIError is a non-2xx response decoded from the uniform error
// envelope.
type APIError struct {
	Status  int    // HTTP status code
	Code    string // serveapi.Code* constant
	Message string
	// RetryAfter is the parsed Retry-After delay of a 429 (0 otherwise).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("toposerve: %d %s: %s", e.Status, e.Code, e.Message)
}

// IsCode reports whether err is an *APIError with the envelope code.
func IsCode(err error, code string) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == code
}

// Client calls one toposerve instance.
type Client struct {
	base string
	http *http.Client

	// MaxRetries bounds the automatic retries of 429 queue_full
	// responses (0 disables retrying). Each retry waits the server's
	// Retry-After, capped at MaxRetryWait.
	MaxRetries int
	// MaxRetryWait caps one retry sleep (default 5s).
	MaxRetryWait time.Duration

	retries429 atomic.Int64
	requests   atomic.Int64
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient overrides the underlying *http.Client (default:
// http.DefaultClient with a 30s timeout clone).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithMaxRetries sets the 429 retry budget.
func WithMaxRetries(n int) Option { return func(c *Client) { c.MaxRetries = n } }

// New returns a client for the server at base (e.g.
// "http://127.0.0.1:8080").
func New(base string, opts ...Option) *Client {
	c := &Client{
		base:         strings.TrimRight(base, "/"),
		http:         &http.Client{Timeout: 30 * time.Second},
		MaxRetries:   4,
		MaxRetryWait: 5 * time.Second,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Stats reports the client's lifetime request and 429-retry counts —
// the load generator reads these to report admission-control pressure.
func (c *Client) Stats() (requests, retries429 int64) {
	return c.requests.Load(), c.retries429.Load()
}

// BaseURL returns the server base URL the client was built with.
func (c *Client) BaseURL() string { return c.base }

// doJSON performs one HTTP exchange: marshal body (when non-nil), send,
// decode a 2xx into out (when non-nil) or a non-2xx into an *APIError.
// 429s are retried per the client's budget.
func (c *Client) doJSON(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("client: marshal %s %s: %w", method, path, err)
		}
	}
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return err
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		c.requests.Add(1)
		resp, err := c.http.Do(req)
		if err != nil {
			return err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("client: reading %s %s response: %w", method, path, err)
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if out == nil {
				return nil
			}
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
			}
			return nil
		}
		apiErr := decodeAPIError(resp, data)
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= c.MaxRetries {
			return apiErr
		}
		c.retries429.Add(1)
		if err := c.sleep(ctx, c.retryDelay(apiErr.RetryAfter, attempt)); err != nil {
			return err
		}
	}
}

// retryDelay picks the sleep before a 429 retry: the server's
// Retry-After when present, else exponential backoff from 100ms; both
// capped at MaxRetryWait.
func (c *Client) retryDelay(retryAfter time.Duration, attempt int) time.Duration {
	d := retryAfter
	if d <= 0 {
		d = 100 * time.Millisecond << uint(attempt)
	}
	if max := c.MaxRetryWait; max > 0 && d > max {
		d = max
	}
	return d
}

func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// decodeAPIError turns a non-2xx response into an *APIError, tolerating
// bodies that are not the envelope (proxies, panics).
func decodeAPIError(resp *http.Response, data []byte) *APIError {
	ae := &APIError{Status: resp.StatusCode, Code: "unknown", Message: strings.TrimSpace(string(data))}
	var env serveapi.ErrorResponse
	if err := json.Unmarshal(data, &env); err == nil && env.Error.Code != "" {
		ae.Code, ae.Message = env.Error.Code, env.Error.Message
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if sec, err := strconv.Atoi(s); err == nil && sec > 0 {
			ae.RetryAfter = time.Duration(sec) * time.Second
		}
	}
	return ae
}
