// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (run `go test -bench=. -benchmem`), plus the ablation benches
// DESIGN.md calls out and micro-benchmarks of the core algorithms. Each
// figure benchmark regenerates the experiment end to end; the reported
// ns/op is the cost of reproducing that figure on this machine, and the
// experiment's own metrics are reported via b.ReportMetric where the paper
// publishes a headline number.
package gputopo

import (
	"testing"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/experiments"
	"gputopo/internal/fm"
	"gputopo/internal/graph"
	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
	"gputopo/internal/profile"
	"gputopo/internal/sched"
	"gputopo/internal/schedcore"
	"gputopo/internal/schedcore/domains"
	"gputopo/internal/schedcore/placecache"
	"gputopo/internal/simulator"
	"gputopo/internal/topology"
	"gputopo/internal/workload"
)

// BenchmarkFig3Breakdown regenerates Figure 3 (computation/communication
// breakdown per model and batch size).
func BenchmarkFig3Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3Breakdown()
		if len(rows) != 24 {
			b.Fatal("unexpected row count")
		}
	}
}

// BenchmarkFig4PackSpread regenerates Figure 4 and reports the headline
// AlexNet batch-1 pack-vs-spread speedup (paper: ≈1.30x).
func BenchmarkFig4PackSpread(b *testing.B) {
	var headline float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4PackSpread()
		for _, r := range rows {
			if r.Model == perfmodel.AlexNet && r.Batch == 1 {
				headline = r.Speedup
			}
		}
	}
	b.ReportMetric(headline, "alexnet-b1-speedup")
}

// BenchmarkFig5Bandwidth regenerates Figure 5 (NVLink bandwidth over time)
// and reports the batch-1 / batch-128 mean-bandwidth ratio (paper: ≈7x).
func BenchmarkFig5Bandwidth(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig5Bandwidth(42)
		if err != nil {
			b.Fatal(err)
		}
		ratio = series[0].Mean / series[3].Mean
	}
	b.ReportMetric(ratio, "b1/b128-bandwidth-ratio")
}

// BenchmarkFig6Interference regenerates Figure 6 (co-location slowdown
// matrix) and reports the tiny+tiny slowdown (paper: ≈30%).
func BenchmarkFig6Interference(b *testing.B) {
	var tinyTiny float64
	for i := 0; i < b.N; i++ {
		cells := experiments.Fig6Interference()
		tinyTiny = cells[0].Slowdown
	}
	b.ReportMetric(tinyTiny*100, "tiny+tiny-slowdown-%")
}

// BenchmarkPCIeComparison regenerates the §3.2 NVLink-vs-PCIe table.
func BenchmarkPCIeComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.PCIeComparison(); len(rows) != 8 {
			b.Fatal("unexpected rows")
		}
	}
}

// BenchmarkModelParallelStudy regenerates the §2 extension study and
// reports the model-parallel pack-vs-spread speedup at batch 128, where
// data parallelism has stopped caring about placement.
func BenchmarkModelParallelStudy(b *testing.B) {
	var mp128 float64
	for i := 0; i < b.N; i++ {
		rows := experiments.ModelParallelStudy()
		mp128 = rows[len(rows)-1].MPSpeedup
	}
	b.ReportMetric(mp128, "mp-b128-speedup")
}

// BenchmarkFig8Prototype regenerates the Figure 8 prototype experiment
// (Table 1 workload under all four policies at iteration granularity) and
// reports TOPO-AWARE-P's cumulative-time speedup over Best-Fit (paper:
// ≈1.30x).
func BenchmarkFig8Prototype(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		mp, _, err := experiments.Fig8Prototype(42)
		if err != nil {
			b.Fatal(err)
		}
		speedup = mp.ByPolicy(sched.BestFit).Makespan / mp.ByPolicy(sched.TopoAwareP).Makespan
	}
	b.ReportMetric(speedup, "topoP-vs-BF-speedup")
}

// BenchmarkFig9Validation regenerates the §5.4 prototype-vs-simulation
// validation and reports the worst relative disagreement in percent.
func BenchmarkFig9Validation(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Validate(42)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			d := r.RelativeError
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(worst*100, "max-rel-diff-%")
}

// BenchmarkFig10Scenario1 regenerates Figure 10 (100 jobs, 5 machines) and
// reports TOPO-AWARE-P's SLO violations (paper: none).
func BenchmarkFig10Scenario1(b *testing.B) {
	var viol float64
	for i := 0; i < b.N; i++ {
		mp, err := experiments.Scenario(100, 5, 42)
		if err != nil {
			b.Fatal(err)
		}
		viol = float64(mp.ByPolicy(sched.TopoAwareP).SLOViolations())
	}
	b.ReportMetric(viol, "topoP-SLO-violations")
}

// BenchmarkFig11Scenario2 regenerates Figure 11. The paper uses 10k jobs
// on 1k machines; the benchmark defaults to a 1/5-scale replica (2k jobs,
// 200 machines) so `go test -bench` completes in minutes — run
// `cmd/topobench -fig 11` for the full scale (EXPERIMENTS.md records both).
func BenchmarkFig11Scenario2(b *testing.B) {
	jobs, machines := 2000, 200
	if testing.Short() {
		jobs, machines = 400, 40
	}
	var viol float64
	for i := 0; i < b.N; i++ {
		mp, err := experiments.Scenario(jobs, machines, 42)
		if err != nil {
			b.Fatal(err)
		}
		viol = float64(mp.ByPolicy(sched.TopoAwareP).SLOViolations())
	}
	b.ReportMetric(viol, "topoP-SLO-violations")
}

// BenchmarkOverheadDecisionTopoAware measures the per-decision cost of the
// topology-aware placement at scenario-2-like machine counts (§5.5.3
// reports ≈3s on their hardware vs ≈0.45s greedy; the reproduced quantity
// is the topo/greedy ratio, visible against the FCFS benchmark below).
func BenchmarkOverheadDecisionTopoAware(b *testing.B) {
	benchDecision(b, sched.TopoAware)
}

// BenchmarkOverheadDecisionFCFS is the greedy counterpart of the decision
// overhead comparison.
func BenchmarkOverheadDecisionFCFS(b *testing.B) {
	benchDecision(b, sched.FCFS)
}

// BenchmarkOverheadDecisionBestFit measures Best-Fit's decision cost.
func BenchmarkOverheadDecisionBestFit(b *testing.B) {
	benchDecision(b, sched.BestFit)
}

// benchDecision measures one placement decision on a 1000-machine cluster
// with a realistic allocation level (≈50% of GPUs busy).
func benchDecision(b *testing.B, policy sched.Policy) {
	topo := topology.Cluster(1000, topology.KindMinsky)
	st := cluster.NewState(topo)
	occupant := perfmodel.Traits{Model: perfmodel.AlexNet, Class: 1, GPUs: 2}
	id := 0
	for m := 0; m < 1000; m += 2 {
		gpus := topo.GPUsOfMachine(m)
		if err := st.Allocate(jobName(id), []int{gpus[0], gpus[1]}, 1, occupant); err != nil {
			b.Fatal(err)
		}
		id++
	}
	mapper, err := core.NewMapper(profile.Generate(topo, 4), core.DefaultWeights())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sched.New(policy, st, mapper)
		j := job.New("bench", perfmodel.AlexNet, 4, 2, 0.5, 0)
		if err := s.Submit(j); err != nil {
			b.Fatal(err)
		}
		ds := s.Schedule()
		if len(ds) != 1 || ds[0].Postponed {
			b.Fatal("placement failed")
		}
		b.StopTimer()
		if err := st.Release("bench"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func jobName(i int) string {
	return "occ" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}

// halfBusyCluster builds the benchDecision substrate — a minsky cluster
// at ≈50% occupancy via a 2-GPU occupant on every even machine — at an
// arbitrary machine count.
func halfBusyCluster(b *testing.B, machines int) (*topology.Topology, *cluster.State) {
	b.Helper()
	topo := topology.Cluster(machines, topology.KindMinsky)
	st := cluster.NewState(topo)
	occupant := perfmodel.Traits{Model: perfmodel.AlexNet, Class: 1, GPUs: 2}
	id := 0
	for m := 0; m < machines; m += 2 {
		gpus := topo.GPUsOfMachine(m)
		if err := st.Allocate(jobName(id), []int{gpus[0], gpus[1]}, 1, occupant); err != nil {
			b.Fatal(err)
		}
		id++
	}
	return topo, st
}

// BenchmarkRouterRoute measures one sharded-serve routing decision: the
// admissibility walk plus three counter reads per domain, at a 16-domain
// fan-out with mixed job shapes.
func BenchmarkRouterRoute(b *testing.B) {
	const nd = 16
	caps := make([]domains.Capacity, nd)
	for d := range caps {
		caps[d] = domains.CapacityOf(topology.Cluster(8, topology.KindMinsky))
	}
	free := func(d int) (int, int, int) {
		// Synthetic but domain-varying occupancy so Route exercises both
		// the seats-now and spill arms.
		return (d * 5) % 33, d % 5, d % 9
	}
	r := domains.NewRouter(caps, free)
	js := []*job.Job{
		job.New("r1", perfmodel.AlexNet, 4, 1, 0.5, 0),
		job.New("r2", perfmodel.GoogLeNet, 4, 4, 0.5, 0),
		job.New("r4", perfmodel.AlexNet, 4, 2, 0.5, 0),
	}
	js[1].SingleNode = true
	js[2].AntiCollocate = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Route(js[i%len(js)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlaceCacheHit measures the memoized fast path in isolation:
// canonical key construction over a live (fingerprint-warm) state plus
// the LRU lookup. This is the per-candidate cost a cache hit pays in
// place of a full DRB mapping.
func BenchmarkPlaceCacheHit(b *testing.B) {
	_, st := halfBusyCluster(b, 100)
	j := job.New("bench", perfmodel.AlexNet, 4, 2, 0.5, 0)
	sig, ok := placecache.JobSig(j)
	if !ok {
		b.Fatal("benchmark job not cacheable")
	}
	c := placecache.New(0)
	c.Store(placecache.SingleHostKey(sig, st, 1), []int{0, 1}, placecache.Score{Utility: 0.5}, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, hit := c.Lookup(placecache.SingleHostKey(sig, st, 1)); !hit {
			b.Fatal("warm key missed")
		}
	}
}

// BenchmarkScheduleSteadyState measures one steady-state scheduling
// round through the schedcore engine at scenario-2 scale (1000 minsky
// machines, ≈50% busy), with the placement cache on and off. The churn
// loop places and releases the same job shape, so the cache-on variant
// runs at its steady hit rate — the ratio between the two subbenchmarks
// is the memoization speedup CI gates end to end via the cachebench
// sweep grid.
func BenchmarkScheduleSteadyState(b *testing.B) {
	for _, cacheOn := range []bool{true, false} {
		name := "cache=on"
		if !cacheOn {
			name = "cache=off"
		}
		b.Run(name, func(b *testing.B) {
			topo, st := halfBusyCluster(b, 1000)
			mapper, err := core.NewMapper(profile.Generate(topo, 4), core.DefaultWeights())
			if err != nil {
				b.Fatal(err)
			}
			c := schedcore.New(schedcore.TopoAware, st, mapper)
			c.SetPlaceCache(cacheOn)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := job.New("bench", perfmodel.AlexNet, 4, 2, 0.5, 0)
				if err := c.Submit(j); err != nil {
					b.Fatal(err)
				}
				ds := c.Schedule()
				if len(ds) != 1 || ds[0].Postponed {
					b.Fatal("placement failed")
				}
				b.StopTimer()
				if err := c.Release("bench"); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// BenchmarkAblationLevelWeights re-runs the Table 1 scenario across socket
// weight settings (§4.1.2: only the ordering matters).
func BenchmarkAblationLevelWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LevelWeightAblation([]float64{10, 20, 50}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAlphaSweep sweeps the utility weight αcc on a reduced
// scenario 1.
func BenchmarkAblationAlphaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AlphaSweep([]float64{0, 1.0 / 3, 0.8}, 60, 3, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationThresholdSweep sweeps the TOPO-AWARE-P postponement
// threshold on a reduced scenario 1.
func BenchmarkAblationThresholdSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ThresholdSweep([]float64{0, 0.5, 0.9}, 60, 3, 42); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFMvsExhaustive compares Fiduccia–Mattheyses against the
// exhaustive-optimal bipartition on DGX-1-sized affinity graphs.
func BenchmarkAblationFMvsExhaustive(b *testing.B) {
	topo := topology.DGX1()
	g := graph.New()
	n := topo.NumGPUs()
	for i := 0; i < n; i++ {
		g.AddVertex("")
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1/topo.Distance(i, j))
		}
	}
	b.Run("FM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fm.Bipartition(g, fm.Options{})
		}
	})
	b.Run("Exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fm.ExhaustiveBipartition(g, 1)
		}
	})
}

// BenchmarkDRBPlacement measures a single DRB mapping ψ(A, P) of a 4-GPU
// job on a DGX-1 — the paper's core operation with complexity
// Θ(|E_A|·log₂|V_P|).
func BenchmarkDRBPlacement(b *testing.B) {
	topo := topology.DGX1()
	st := cluster.NewState(topo)
	mapper, err := core.NewMapper(profile.Generate(topo, 8), core.DefaultWeights())
	if err != nil {
		b.Fatal(err)
	}
	j := job.New("bench", perfmodel.AlexNet, 1, 4, 0.5, 0)
	free := st.FreeGPUs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mapper.Place(j, st, free); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures simulated jobs per second of the
// trace-driven engine at scenario-1 scale.
func BenchmarkSimulatorThroughput(b *testing.B) {
	topo := topology.Cluster(5, topology.KindMinsky)
	jobs, err := workload.Generate(workload.GenConfig{Jobs: 100, Seed: 42}, topo)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulator.Run(simulator.Config{Topology: topo, Policy: sched.TopoAwareP}, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrototypeEngine measures the iteration-granularity engine on
// the Table 1 workload (the Figure 8 inner loop).
func BenchmarkPrototypeEngine(b *testing.B) {
	topo := topology.Power8Minsky()
	for i := 0; i < b.N; i++ {
		if _, err := RunPrototype(PrototypeConfig{Topology: topo, Policy: sched.TopoAwareP}, workload.Table1()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopologyBuild measures cluster topology construction including
// all distance/bandwidth matrices.
func BenchmarkTopologyBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if topo := topology.Cluster(100, topology.KindMinsky); topo.NumGPUs() != 400 {
			b.Fatal("bad build")
		}
	}
}

// BenchmarkProfileGeneration measures the §4.2 profile store generation.
func BenchmarkProfileGeneration(b *testing.B) {
	topo := topology.Power8Minsky()
	for i := 0; i < b.N; i++ {
		if s := profile.Generate(topo, 4); s.Len() != 48 {
			b.Fatal("bad store")
		}
	}
}
