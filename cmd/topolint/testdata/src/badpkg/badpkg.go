// Package badpkg is the known-bad fixture for cmd/topolint's CLI test:
// each function violates a different analyzer, and main_test asserts
// the binary reports all of them and exits 1.
package badpkg

import (
	"math/rand"
	"sort"
	"time"
)

type item struct {
	name string
	done bool
}

// MapSum accumulates floats in map order: detmap.
func MapSum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v
	}
	return total
}

// WallSeed seeds an RNG from the wall clock: seedflow.
func WallSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano()))
}

// NilUse dereferences inside the branch that proved it nil: nilness.
func NilUse(it *item) string {
	if it == nil {
		return it.name
	}
	return it.name
}

// LostWrites mutates range copies: unusedwrite.
func LostWrites(items []item) {
	for _, it := range items {
		it.done = true
	}
}

// SortArray hands sort.Slice an array: sortslice.
func SortArray() {
	var a [4]int
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
