package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestBadFixtureFails runs the CLI against the known-bad package and
// checks both the exit code and that every planted violation is named.
func TestBadFixtureFails(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./testdata/src/badpkg"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"[detmap] float accumulation into total depends on map iteration order",
		"[seedflow]",
		"[nilness] nil dereference: it is provably nil in this branch",
		"[unusedwrite] unused write: it is a per-iteration copy",
		"[sortslice] sort.Slice's argument must be a slice; [4]int will panic",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q\nstdout:\n%s", want, out)
		}
	}
	if !strings.Contains(stderr.String(), "diagnostic(s)") {
		t.Errorf("stderr missing the diagnostic count summary: %q", stderr.String())
	}
}

// TestCleanPackagePasses lints a real repo package that must be clean.
func TestCleanPackagePasses(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"gputopo/internal/stats"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestAnalyzersSubset restricts the run so only the named analyzer can
// fire on the bad fixture.
func TestAnalyzersSubset(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-analyzers", "sortslice", "./testdata/src/badpkg"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if strings.Contains(stdout.String(), "[detmap]") {
		t.Errorf("detmap fired despite -analyzers sortslice:\n%s", stdout.String())
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "nope", "./testdata/src/badpkg"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown analyzer(s): nope`) {
		t.Errorf("stderr = %q, want unknown-analyzer message", stderr.String())
	}
}

func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0", code)
	}
	for _, name := range []string{"detmap", "layering", "nilness", "seedflow", "sortslice", "unusedwrite", "wallclock", "wiretypes", "lintignore"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}

// TestVetProbes covers the two handshakes `go vet -vettool` performs
// before dispatching work.
func TestVetProbes(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exit code = %d, want 0", code)
	}
	if !strings.HasPrefix(stdout.String(), "topolint version ") || !strings.Contains(stdout.String(), "buildID=") {
		t.Errorf("-V=full output %q lacks the version/buildID handshake", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags exit code = %d, want 0", code)
	}
	var flags []any
	if err := json.Unmarshal(stdout.Bytes(), &flags); err != nil {
		t.Errorf("-flags output %q is not a JSON array: %v", stdout.String(), err)
	}
}

// TestUnitMode drives the vet.cfg protocol end to end: a config built
// the way cmd/go builds one (export data from `go list`) must produce
// the same diagnostics and write the vetx output file.
func TestUnitMode(t *testing.T) {
	cfgPath, vetxPath := writeUnitConfig(t, "./testdata/src/badpkg")

	var stdout, stderr bytes.Buffer
	code := run([]string{cfgPath}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "[detmap]") || !strings.Contains(stderr.String(), "[sortslice]") {
		t.Errorf("unit-mode stderr missing diagnostics:\n%s", stderr.String())
	}
	assertFileExists(t, vetxPath)
}

// TestUnitModeVetxOnly: facts-only invocations succeed without running
// analyzers but must still write the output file.
func TestUnitModeVetxOnly(t *testing.T) {
	dir := t.TempDir()
	vetxPath := filepath.Join(dir, "out.vetx")
	cfgPath := filepath.Join(dir, "unit.cfg")
	writeJSON(t, cfgPath, vetConfig{ID: "x", ImportPath: "x", VetxOnly: true, VetxOutput: vetxPath})

	var stdout, stderr bytes.Buffer
	if code := run([]string{cfgPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	assertFileExists(t, vetxPath)
}

// writeUnitConfig builds a faithful vet.cfg for pattern: GoFiles from
// the package itself, ImportMap/PackageFile from `go list -export`.
func writeUnitConfig(t *testing.T, pattern string) (cfgPath, vetxPath string) {
	t.Helper()
	out, err := exec.Command("go", "list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly", pattern).Output()
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	cfg := vetConfig{
		ID:          "badpkg",
		Compiler:    "gc",
		ImportMap:   map[string]string{},
		PackageFile: map[string]string{},
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p struct {
			ImportPath string
			Dir        string
			GoFiles    []string
			Export     string
			DepOnly    bool
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			cfg.ImportMap[p.ImportPath] = p.ImportPath
			cfg.PackageFile[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			cfg.Dir = p.Dir
			cfg.ImportPath = p.ImportPath
			for _, gf := range p.GoFiles {
				cfg.GoFiles = append(cfg.GoFiles, filepath.Join(p.Dir, gf))
			}
		}
	}
	dir := t.TempDir()
	vetxPath = filepath.Join(dir, "badpkg.vetx")
	cfg.VetxOutput = vetxPath
	cfgPath = filepath.Join(dir, "badpkg.cfg")
	writeJSON(t, cfgPath, cfg)
	return cfgPath, vetxPath
}

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
}

func assertFileExists(t *testing.T, path string) {
	t.Helper()
	if _, err := os.Stat(path); err != nil {
		t.Errorf("expected %s to be written: %v", path, err)
	}
}
