// Command topolint runs the repo's analyzer suite (internal/lint): the
// invariant checks that keep sweeps deterministic (detmap, seedflow),
// time injected (wallclock), the package DAG layered (layering), the
// serving wire types canonical (wiretypes), plus stdlib-grade checks
// (nilness, sortslice, unusedwrite).
//
//	topolint ./...                        lint the whole module
//	topolint -list                        list the analyzers
//	topolint -analyzers detmap,seedflow ./internal/sweep
//	topolint -v ./...                     also list justified suppressions
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load errors.
//
// The binary also speaks the `go vet -vettool` protocol: it answers the
// -V=full and -flags probes and accepts a JSON vet.cfg unit file, so
//
//	go vet -vettool=$(which topolint) ./...
//
// runs the same suite under the vet driver, one package unit at a time.
// Suppression uses scoped, justified //lint:ignore directives; see
// docs/linting.md.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"gputopo/internal/lint"
	"gputopo/internal/lint/driver"
	"gputopo/internal/lint/load"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	// go vet probes its vettool before handing it work: -V=full asks
	// for a cache-keyable identity, -flags for pass-through flag defs.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			fmt.Fprintf(stdout, "topolint version devel buildID=%s\n", buildID())
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runUnit(args[0], stderr)
		}
	}

	fs := flag.NewFlagSet("topolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list      = fs.Bool("list", false, "list the analyzers and exit")
		only      = fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
		verbose   = fs.Bool("v", false, "also list findings silenced by justified //lint:ignore directives")
		changeDir = fs.String("C", ".", "directory to resolve package patterns in")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "%-12s %s\n", driver.DirectiveAnalyzer,
			"(built-in) rejects malformed, unknown-name, unjustified or stale //lint:ignore directives")
		return 0
	}
	if *only != "" {
		matched, unknown := lint.ByName(strings.Split(*only, ","))
		if len(unknown) > 0 {
			fmt.Fprintf(stderr, "topolint: unknown analyzer(s): %s (see -list)\n", strings.Join(unknown, ", "))
			return 2
		}
		analyzers = matched
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load(*changeDir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "topolint: %v\n", err)
		return 2
	}
	res, err := driver.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "topolint: %v\n", err)
		return 2
	}
	driver.Format(stdout, res, *verbose)
	if len(res.Diags) > 0 {
		fmt.Fprintf(stderr, "topolint: %d diagnostic(s) in %d package(s)\n", len(res.Diags), len(pkgs))
		return 1
	}
	return 0
}

// buildID fingerprints the running executable so `go vet` can cache
// results keyed on the tool's identity, invalidating when the binary
// changes.
func buildID() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
