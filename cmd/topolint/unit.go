package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"gputopo/internal/lint"
	"gputopo/internal/lint/driver"
	"gputopo/internal/lint/load"
)

// vetConfig is the JSON unit file `go vet` hands its vettool — one
// package compilation unit with pre-resolved import and export-data
// maps. Field set mirrors cmd/go's internal vetConfig.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit executes one `go vet` unit: parse the listed sources,
// type-check them against the supplied export data, run the suite, and
// report plain-text diagnostics on stderr. The (empty) VetxOutput file
// must exist on success or vet treats the tool as crashed — topolint
// computes no cross-package facts, so the file carries no content.
func runUnit(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "topolint: reading vet config: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "topolint: parsing vet config %s: %v\n", cfgPath, err)
		return 2
	}

	writeVetx := func() bool {
		if cfg.VetxOutput == "" {
			return true
		}
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "topolint: writing vetx output: %v\n", err)
			return false
		}
		return true
	}

	// Facts-only invocations have nothing to do here.
	if cfg.VetxOnly {
		if !writeVetx() {
			return 2
		}
		return 0
	}

	pkg, ok := checkUnit(&cfg, stderr)
	if pkg == nil {
		if ok { // nothing to lint (e.g. all files filtered); still a success
			if !writeVetx() {
				return 2
			}
			return 0
		}
		return 2
	}
	if len(pkg.TypeErrors) > 0 {
		if cfg.SucceedOnTypecheckFailure {
			if !writeVetx() {
				return 2
			}
			return 0
		}
		fmt.Fprintf(stderr, "topolint: %s does not type-check: %v\n", cfg.ImportPath, pkg.TypeErrors[0])
		return 2
	}

	res, err := driver.Run([]*load.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintf(stderr, "topolint: %v\n", err)
		return 2
	}
	if !writeVetx() {
		return 2
	}
	if len(res.Diags) > 0 {
		// go vet surfaces vettool stderr verbatim: plain
		// file:line:col lines, no summary footer.
		driver.Format(stderr, res, false)
		return 1
	}
	return 0
}

// checkUnit parses and type-checks the unit's non-test sources. The
// bool result distinguishes "nothing to check" (nil, true) from a hard
// error (nil, false). Test files are excluded on purpose: topolint
// gates shipped sources, matching the standalone loader's policy.
func checkUnit(cfg *vetConfig, stderr io.Writer) (*load.Package, bool) {
	fset := token.NewFileSet()
	pkg := &load.Package{ImportPath: cfg.ImportPath, Dir: cfg.Dir, Fset: fset}
	for _, gf := range cfg.GoFiles {
		if strings.HasSuffix(gf, "_test.go") {
			continue
		}
		path := gf
		if !filepath.IsAbs(path) {
			path = filepath.Join(cfg.Dir, gf)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			fmt.Fprintf(stderr, "topolint: %v\n", err)
			return nil, false
		}
		pkg.GoFiles = append(pkg.GoFiles, path)
		pkg.Syntax = append(pkg.Syntax, f)
	}
	if len(pkg.Syntax) == 0 {
		return nil, true
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(cfg.ImportPath, fset, pkg.Syntax, pkg.TypesInfo)
	pkg.Types = tpkg
	return pkg, true
}
