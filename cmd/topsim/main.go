// Command topsim runs the trace-driven cluster simulator: it either
// generates a workload (§5.3) or replays a JSON trace, schedules it under
// one or all policies, and prints the comparison report. With -record it
// writes the run back out as a trace for later replay.
//
//	topsim -machines 5 -jobs 100 -policy all
//	topsim -trace run.json -policy topo-p
//	topsim -machines 5 -jobs 100 -policy topo-p -record out.json
package main

import (
	"flag"
	"fmt"
	"os"

	"gputopo/internal/job"
	"gputopo/internal/metrics"
	"gputopo/internal/sched"
	"gputopo/internal/simulator"
	"gputopo/internal/topology"
	"gputopo/internal/trace"
	"gputopo/internal/workload"
)

func main() {
	machines := flag.Int("machines", 5, "number of Minsky machines in the cluster")
	jobs := flag.Int("jobs", 100, "number of jobs to generate (ignored with -trace)")
	policy := flag.String("policy", "all", "scheduling policy: fcfs, bf, topo, topo-p, all")
	seed := flag.Uint64("seed", 42, "workload generation seed")
	rate := flag.Float64("rate", 10, "Poisson arrival rate, jobs per minute")
	traceFile := flag.String("trace", "", "JSON trace to replay instead of generating")
	record := flag.String("record", "", "write the (last) run as a JSON trace to this file")
	timeline := flag.Bool("timeline", false, "print the GPU allocation timeline")
	flag.Parse()

	if err := run(*machines, *jobs, *policy, *seed, *rate, *traceFile, *record, *timeline); err != nil {
		fmt.Fprintln(os.Stderr, "topsim:", err)
		os.Exit(1)
	}
}

func run(machines, jobCount int, policyName string, seed uint64, rate float64, traceFile, record string, timeline bool) error {
	topo := topology.Cluster(machines, topology.KindMinsky)

	var stream []*job.Job
	var err error
	if traceFile != "" {
		f, err := os.Open(traceFile)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.Read(f)
		if err != nil {
			return err
		}
		stream, err = tr.ReplayJobs()
		if err != nil {
			return err
		}
		fmt.Printf("replaying trace %q: %d jobs\n\n", tr.Name, len(stream))
	} else {
		stream, err = workload.Generate(workload.GenConfig{
			Jobs:        jobCount,
			ArrivalRate: rate,
			Seed:        seed,
		}, topo)
		if err != nil {
			return err
		}
	}

	var policies []sched.Policy
	if policyName == "all" {
		policies = sched.AllPolicies()
	} else {
		p, err := sched.ParsePolicy(policyName)
		if err != nil {
			return err
		}
		policies = []sched.Policy{p}
	}

	var results []*simulator.Result
	for _, pol := range policies {
		res, err := simulator.Run(simulator.Config{Topology: topo, Policy: pol}, stream)
		if err != nil {
			return fmt.Errorf("%s: %w", pol, err)
		}
		results = append(results, res)
		if timeline {
			fmt.Println(metrics.Timeline(res, topo.NumGPUs(), 72))
		}
	}

	fmt.Println(metrics.CompareRuns(results))
	fmt.Println(metrics.SlowdownChart("JOB'S QOS — slowdown, worst to best", results, false, 64, 10))
	fmt.Println(metrics.SlowdownChart("JOB'S QOS + WAITING TIME", results, true, 64, 10))

	if record != "" {
		last := results[len(results)-1]
		t := trace.FromRun("topsim", topo.Name, last)
		f, err := os.Create(record)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.Write(f, t); err != nil {
			return err
		}
		fmt.Printf("recorded trace to %s\n", record)
	}
	return nil
}
