// Command workloadgen generates a reproducible job trace per §5.3 —
// Poisson arrivals, Binomial batch-size and model mixes — and writes it as
// JSON for topsim to replay.
//
//	workloadgen -jobs 100 -rate 10 -seed 7 -o workload.json
package main

import (
	"flag"
	"fmt"
	"os"

	"gputopo/internal/topology"
	"gputopo/internal/trace"
	"gputopo/internal/workload"
)

func main() {
	jobs := flag.Int("jobs", 100, "number of jobs")
	rate := flag.Float64("rate", 10, "Poisson arrival rate, jobs per minute")
	seed := flag.Uint64("seed", 42, "generator seed")
	machines := flag.Int("machines", 5, "reference cluster size (for iteration calibration)")
	meanDur := flag.Float64("mean-duration", 120, "target mean solo runtime in seconds")
	out := flag.String("o", "", "output file (stdout when empty)")
	flag.Parse()

	if err := run(*jobs, *rate, *seed, *machines, *meanDur, *out); err != nil {
		fmt.Fprintln(os.Stderr, "workloadgen:", err)
		os.Exit(1)
	}
}

func run(jobs int, rate float64, seed uint64, machines int, meanDur float64, out string) error {
	topo := topology.Cluster(machines, topology.KindMinsky)
	stream, err := workload.Generate(workload.GenConfig{
		Jobs:         jobs,
		ArrivalRate:  rate,
		Seed:         seed,
		MeanDuration: meanDur,
	}, topo)
	if err != nil {
		return err
	}
	t := trace.FromJobs(fmt.Sprintf("generated-seed%d", seed), topo.Name, stream)

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, t); err != nil {
		return err
	}
	s := t.Summarize()
	fmt.Fprintf(os.Stderr, "generated %d jobs spanning %.1fs (mean %.2f GPUs/job)\n",
		s.Jobs, s.Span, s.MeanGPUs)
	return nil
}
