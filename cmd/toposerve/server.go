package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/job"
	"gputopo/internal/perfmodel"
	"gputopo/internal/profile"
	"gputopo/internal/schedcore"
	"gputopo/internal/sweep"
)

// decisionLogCap bounds the in-memory decision ring: old entries are
// dropped once the ring is full, newest-first reads stay O(limit).
const decisionLogCap = 4096

// Server drives one scheduling core against one physical topology. All
// core access happens on a single writer goroutine (loop); HTTP handlers
// submit closures to it and wait — the core itself is never touched
// concurrently, which is the invariant its purity contract requires.
type Server struct {
	core    *schedcore.Core
	topoKey string
	started time.Time

	cmds chan func()
	quit chan struct{}

	// Owned by the writer goroutine (touched only inside do closures).
	jobs map[string]*job.Job // every accepted, not-yet-released job
	// decisions is a circular buffer: once it reaches decisionLogCap,
	// decHead marks the oldest record and appends overwrite in place —
	// O(1) per decision, no memmove on the writer loop.
	decisions []decisionRecord
	decHead   int
	decSeq    int
}

// decisionRecord is one logged scheduling decision.
type decisionRecord struct {
	Seq           int     `json:"seq"`
	Time          float64 `json:"time_s"`
	JobID         string  `json:"job_id"`
	Placed        bool    `json:"placed"`
	GPUs          []int   `json:"gpus,omitempty"`
	Utility       float64 `json:"utility,omitempty"`
	Reason        string  `json:"reason,omitempty"`
	SLOViolated   bool    `json:"slo_violated,omitempty"`
	Postponements int     `json:"postponements,omitempty"`
}

// NewServer builds the substrate for the topology spec (the same
// profile-store construction the sweep engine uses, so a served cluster
// and a simulated one are bit-compatible) and starts the writer loop.
func NewServer(spec sweep.TopologySpec, policy schedcore.Policy, clock schedcore.Clock) (*Server, error) {
	topo, err := spec.Build(spec.EffectiveMachines(1), false)
	if err != nil {
		return nil, err
	}
	maxGPUs := topo.NumGPUs()
	if maxGPUs > 8 {
		maxGPUs = 8
	}
	profiles := profile.Generate(topo, maxGPUs)
	mapper, err := core.NewMapper(profiles, core.DefaultWeights())
	if err != nil {
		return nil, err
	}
	s := &Server{
		core:    schedcore.New(policy, cluster.NewState(topo), mapper, schedcore.WithClock(clock)),
		topoKey: spec.Key(),
		started: time.Now(),
		cmds:    make(chan func()),
		quit:    make(chan struct{}),
		jobs:    map[string]*job.Job{},
	}
	go s.loop()
	return s, nil
}

// loop is the single writer: it owns the core and every mutable server
// field until Close.
func (s *Server) loop() {
	for {
		select {
		case fn := <-s.cmds:
			fn()
		case <-s.quit:
			return
		}
	}
}

// do runs fn on the writer goroutine and waits for it.
func (s *Server) do(fn func()) {
	done := make(chan struct{})
	s.cmds <- func() {
		fn()
		close(done)
	}
	<-done
}

// Close stops the writer loop.
func (s *Server) Close() { close(s.quit) }

// record appends the round's decisions to the ring and returns the
// record for jobID (zero record if the round did not decide it).
func (s *Server) record(ds []*schedcore.Decision, jobID string) (decisionRecord, []string) {
	var mine decisionRecord
	var placed []string
	for _, d := range ds {
		s.decSeq++
		r := decisionRecord{
			Seq:    s.decSeq,
			Time:   d.Time,
			JobID:  d.Job.ID,
			Placed: !d.Postponed,
			Reason: d.Reason,
		}
		if !d.Postponed {
			r.GPUs = append([]int(nil), d.Placement.GPUs...)
			r.Utility = d.Placement.Utility
			r.SLOViolated = d.SLOViolated
			r.Postponements = d.Postponements
			placed = append(placed, d.Job.ID)
		}
		if len(s.decisions) == decisionLogCap {
			s.decisions[s.decHead] = r
			s.decHead = (s.decHead + 1) % decisionLogCap
		} else {
			s.decisions = append(s.decisions, r)
		}
		if d.Job.ID == jobID {
			mine = r
		}
	}
	return mine, placed
}

// jobRequest is the POST /v1/jobs payload. Field names mirror the
// prototype's JSON manifests (§5.1).
type jobRequest struct {
	ID            string  `json:"id"`
	Model         string  `json:"model"`
	BatchSize     int     `json:"batch_size"`
	GPUs          int     `json:"gpus"`
	MinUtility    float64 `json:"min_utility"`
	Iterations    int     `json:"iterations"`
	SingleNode    *bool   `json:"single_node,omitempty"`
	AntiCollocate bool    `json:"anti_collocate,omitempty"`
	ModelParallel bool    `json:"model_parallel,omitempty"`
}

// jobResponse answers POST /v1/jobs with the submitted job's decision.
type jobResponse struct {
	ID            string  `json:"id"`
	Status        string  `json:"status"` // "placed" or "queued"
	GPUs          []int   `json:"gpus,omitempty"`
	Utility       float64 `json:"utility,omitempty"`
	Reason        string  `json:"reason,omitempty"`
	SLOViolated   bool    `json:"slo_violated,omitempty"`
	Time          float64 `json:"time_s"`
	QueuePosition int     `json:"queue_position,omitempty"` // 1-based when queued
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleSubmit is POST /v1/jobs: build the job, stamp its arrival from
// the core's clock, submit, run one scheduling round and answer with
// this job's decision.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid job JSON: %v", err)
		return
	}
	model := perfmodel.AlexNet
	if req.Model != "" {
		var err error
		if model, err = perfmodel.ParseNN(req.Model); err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	if req.BatchSize == 0 {
		req.BatchSize = 1
	}

	var resp jobResponse
	var status int
	s.do(func() {
		id := req.ID
		if id == "" {
			id = fmt.Sprintf("job-%d", len(s.jobs)+1)
			for s.jobs[id] != nil {
				id = "x" + id
			}
		}
		if s.jobs[id] != nil {
			status = http.StatusConflict
			resp = jobResponse{ID: id}
			return
		}
		j := job.New(id, model, req.BatchSize, req.GPUs, req.MinUtility, s.core.Now())
		if req.Iterations > 0 {
			j.Iterations = req.Iterations
		}
		if req.SingleNode != nil {
			j.SingleNode = *req.SingleNode
		}
		j.AntiCollocate = req.AntiCollocate
		if req.ModelParallel {
			j.Parallelism = perfmodel.ModelParallel
		}
		if err := s.core.Submit(j); err != nil {
			status = http.StatusBadRequest
			resp = jobResponse{ID: id, Reason: err.Error()}
			return
		}
		s.jobs[id] = j
		mine, _ := s.record(s.core.Schedule(), id)
		resp = jobResponse{ID: id, Time: s.core.Now()}
		if mine.Placed {
			resp.Status = "placed"
			resp.GPUs = mine.GPUs
			resp.Utility = mine.Utility
			resp.SLOViolated = mine.SLOViolated
		} else {
			resp.Status = "queued"
			resp.Reason = mine.Reason
			if resp.Reason == "" {
				resp.Reason = "no-capacity"
			}
			for i, qj := range s.core.Queued() {
				if qj.ID == id {
					resp.QueuePosition = i + 1
					break
				}
			}
		}
		status = http.StatusOK
	})
	switch status {
	case http.StatusConflict:
		httpError(w, status, "job %s already exists", resp.ID)
	case http.StatusBadRequest:
		httpError(w, status, "%s", resp.Reason)
	default:
		writeJSON(w, resp)
	}
}

// releaseResponse answers DELETE /v1/jobs/{id}.
type releaseResponse struct {
	ID string `json:"id"`
	// Status is "released" (the job was running; its GPUs are free) or
	// "withdrawn" (it was still queued).
	Status string `json:"status"`
	// Unblocked lists jobs the release let the scheduler place — the
	// wake-up index resolves exactly these instead of walking the queue.
	Unblocked []string `json:"unblocked,omitempty"`
}

// handleRelease is DELETE /v1/jobs/{id}: release a running job (then run
// a scheduling round so waiting jobs can take the freed GPUs) or
// withdraw a queued one.
func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var resp releaseResponse
	var status int
	s.do(func() {
		if s.jobs[id] == nil {
			status = http.StatusNotFound
			return
		}
		if s.core.State().Allocation(id) != nil {
			if err := s.core.Release(id); err != nil {
				status = http.StatusInternalServerError
				resp = releaseResponse{ID: id, Status: err.Error()}
				return
			}
			delete(s.jobs, id)
			_, placed := s.record(s.core.Schedule(), "")
			resp = releaseResponse{ID: id, Status: "released", Unblocked: placed}
			status = http.StatusOK
			return
		}
		if s.core.Withdraw(id) {
			delete(s.jobs, id)
			resp = releaseResponse{ID: id, Status: "withdrawn"}
			status = http.StatusOK
			return
		}
		status = http.StatusNotFound
	})
	switch status {
	case http.StatusNotFound:
		httpError(w, status, "no queued or running job %q", id)
	case http.StatusInternalServerError:
		httpError(w, status, "%s", resp.Status)
	default:
		writeJSON(w, resp)
	}
}

// handleDecisions is GET /v1/decisions[?limit=N]: the most recent
// decisions, oldest first.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	limit := decisionLogCap
	if q := r.URL.Query().Get("limit"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "limit %q must be an integer >= 1", q)
			return
		}
		limit = n
	}
	var out []decisionRecord
	s.do(func() {
		// Flatten the ring oldest-first, then keep the newest `limit`.
		n := len(s.decisions)
		ordered := make([]decisionRecord, 0, n)
		for i := 0; i < n; i++ {
			ordered = append(ordered, s.decisions[(s.decHead+i)%n])
		}
		if len(ordered) > limit {
			ordered = ordered[len(ordered)-limit:]
		}
		out = ordered
	})
	writeJSON(w, map[string]any{"decisions": out})
}

// stateResponse is GET /v1/state: a full snapshot of the cluster and the
// scheduler.
type stateResponse struct {
	Topology   string           `json:"topology"`
	Policy     string           `json:"policy"`
	Machines   int              `json:"machines"`
	GPUs       int              `json:"gpus"`
	FreeGPUs   int              `json:"free_gpus"`
	UptimeSec  float64          `json:"uptime_s"`
	ClockSec   float64          `json:"clock_s"`
	Running    []runningEntry   `json:"running"`
	Queue      []queuedEntry    `json:"queue"`
	Stats      statsResponse    `json:"stats"`
	Bandwidth  []bandwidthEntry `json:"bus_bandwidth,omitempty"`
	Decisions  int              `json:"decisions_logged"`
	Fragments  float64          `json:"fragmentation"`
	Discipline string           `json:"queue_discipline"`
}

type runningEntry struct {
	ID   string `json:"id"`
	GPUs []int  `json:"gpus"`
}

type queuedEntry struct {
	ID         string  `json:"id"`
	GPUs       int     `json:"gpus"`
	MinUtility float64 `json:"min_utility"`
	Arrival    float64 `json:"arrival_s"`
}

type bandwidthEntry struct {
	Machine int     `json:"machine"`
	FreeGBs float64 `json:"free_gbs"`
}

type statsResponse struct {
	Decisions       int     `json:"decisions"`
	Placements      int     `json:"placements"`
	Postponements   int     `json:"postponements"`
	SLOViolations   int     `json:"slo_violations"`
	GateSkips       int     `json:"gate_skips"`
	WakeSkips       int     `json:"wake_skips"`
	MeanDecisionUs  float64 `json:"mean_decision_us"`
	MaxDecisionUs   float64 `json:"max_decision_us"`
	TotalDecisionMs float64 `json:"total_decision_ms"`
}

// handleState is GET /v1/state.
func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	var resp stateResponse
	s.do(func() {
		st := s.core.State()
		topo := st.Topology()
		stats := s.core.Stats()
		resp = stateResponse{
			Topology:   s.topoKey,
			Policy:     s.core.Policy().String(),
			Machines:   topo.NumMachines(),
			GPUs:       topo.NumGPUs(),
			FreeGPUs:   st.FreeGPUCount(),
			UptimeSec:  time.Since(s.started).Seconds(),
			ClockSec:   s.core.Now(),
			Running:    []runningEntry{},
			Queue:      []queuedEntry{},
			Fragments:  st.Fragmentation(),
			Decisions:  len(s.decisions),
			Discipline: "fifo-arrival",
			Stats: statsResponse{
				Decisions:       stats.Decisions,
				Placements:      stats.Placements,
				Postponements:   stats.Postponements,
				SLOViolations:   stats.SLOViolations,
				GateSkips:       stats.GateSkips,
				WakeSkips:       stats.WakeSkips,
				MeanDecisionUs:  float64(stats.MeanDecisionTime()) / float64(time.Microsecond),
				MaxDecisionUs:   float64(stats.MaxDecision) / float64(time.Microsecond),
				TotalDecisionMs: float64(stats.DecisionTime) / float64(time.Millisecond),
			},
		}
		for _, id := range st.Jobs() {
			resp.Running = append(resp.Running, runningEntry{ID: id, GPUs: st.Allocation(id).GPUs})
		}
		for _, qj := range s.core.Queued() {
			resp.Queue = append(resp.Queue, queuedEntry{
				ID: qj.ID, GPUs: qj.GPUs, MinUtility: qj.MinUtility, Arrival: qj.Arrival,
			})
		}
		for m := 0; m < topo.NumMachines(); m++ {
			resp.Bandwidth = append(resp.Bandwidth, bandwidthEntry{Machine: m, FreeGBs: st.FreeBusBandwidth(m)})
		}
	})
	writeJSON(w, resp)
}

// Handler wires the HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleRelease)
	mux.HandleFunc("GET /v1/decisions", s.handleDecisions)
	mux.HandleFunc("GET /v1/state", s.handleState)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	return mux
}
