// Command toposerve is the real-time serving front-end over the
// driver-agnostic scheduling core (internal/schedcore): the same §4.4
// placement loop the simulator replays against virtual time, driven by
// live HTTP traffic against the wall clock. One single-writer event loop
// owns the core; handlers never touch it concurrently.
//
//	toposerve -topology minsky:4 -policy topo-p -addr :8080
//	toposerve -topology mix[minsky:2+dgx1:1]
//	toposerve -topology matrix[machine.matrix]:8
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{"model":"AlexNet","batch_size":4,"gpus":2,"min_utility":0.5}'
//	curl -s localhost:8080/v1/state
//	curl -s localhost:8080/v1/decisions
//	curl -s -X DELETE localhost:8080/v1/jobs/job-1
//
// The -topology syntax is the sweep cell-key syntax (named builders,
// "mix[...]" heterogeneous clusters including degraded "minsky-1g"
// kinds, and "matrix[file]" discovered machines), so a substrate from
// any sweep artifact can be served verbatim. See docs/serving.md.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"gputopo/internal/schedcore"
	"gputopo/internal/sweep"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		topoArg  = flag.String("topology", "minsky:1", "topology spec: builder[:machines], mix[kind:n+...], matrix[file][:machines]")
		policy   = flag.String("policy", "topo-p", "placement policy: fcfs, bf, topo, topo-p")
		quietOff = flag.Bool("quiet", false, "suppress the startup banner")
	)
	flag.Parse()
	if err := run(*addr, *topoArg, *policy, *quietOff); err != nil {
		fmt.Fprintln(os.Stderr, "toposerve:", err)
		os.Exit(1)
	}
}

func run(addr, topoArg, policyName string, quiet bool) error {
	spec, err := sweep.ParseTopologyArg(topoArg)
	if err != nil {
		return err
	}
	pol, err := schedcore.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	srv, err := NewServer(spec, pol, schedcore.WallClock())
	if err != nil {
		return err
	}
	defer srv.Close()
	if !quiet {
		fmt.Printf("toposerve: %s under %s on %s\n", spec.Key(), pol, addr)
	}
	return http.ListenAndServe(addr, srv.Handler())
}
