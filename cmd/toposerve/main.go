// Command toposerve is the real-time serving front-end over the
// driver-agnostic scheduling core (internal/schedcore): the same §4.4
// placement loop the simulator replays against virtual time, driven by
// live HTTP traffic against the wall clock. The engine lives in
// internal/serve: one single-writer loop owns the core, batches queued
// arrivals into single scheduling rounds, journals every accepted
// operation to an append-only event log with group-commit fsync, and
// replays the log on start so a restart resumes with identical state.
//
//	toposerve -topology minsky:4 -policy topo-p -addr :8080
//	toposerve -topology mix[minsky:2+dgx1:1] -log /var/lib/toposerve/events.log
//	toposerve -topology matrix[machine.matrix]:8 -max-queue 64
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{"model":"AlexNet","batch_size":4,"gpus":2,"min_utility":0.5}'
//	curl -s localhost:8080/v1/state
//	curl -s 'localhost:8080/v1/decisions?after=0&limit=100'
//	curl -s -X DELETE localhost:8080/v1/jobs/job-1
//
// The -topology syntax is the sweep cell-key syntax (named builders,
// "mix[...]" heterogeneous clusters including degraded "minsky-1g"
// kinds, and "matrix[file]" discovered machines), so a substrate from
// any sweep artifact can be served verbatim. A "/domains[...]" suffix
// (e.g. "minsky:8/domains[hash:4]") shards the cluster into scheduling
// domains: one single-writer loop and one event log per domain, with a
// placement router on top (docs/sharding.md). See docs/serving.md.
//
// SIGTERM/SIGINT drain gracefully: new submissions get 503 (draining),
// in-flight requests finish, a final snapshot bounds the next start's
// replay to zero records.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gputopo/internal/schedcore"
	"gputopo/internal/serve"
	"gputopo/internal/sweep"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		topoArg  = flag.String("topology", "minsky:1", "topology spec: builder[:machines], mix[kind:n+...], matrix[file][:machines]")
		policy   = flag.String("policy", "topo-p", "placement policy: fcfs, bf, topo, topo-p")
		disc     = flag.String("discipline", "", "queue discipline: fifo (default) or priority")
		preempt  = flag.Bool("preempt", false, "enable topology-aware preemption (positive-priority jobs may evict lower-priority ones)")
		logPath  = flag.String("log", "", "event-log path for durability (empty: in-memory only); with domains[...], one log per domain at this path + .dN")
		maxQueue = flag.Int("max-queue", 0, "admission control: 429 when the wait queue is this deep (0: unlimited; per domain when sharded)")
		snapshot = flag.Int("snapshot-every", 0, "snapshot+truncate the log every N records (0: default, negative: only on shutdown)")
		fsyncEv  = flag.Int("fsync-every", 0, "group-commit fsync once every N batches instead of every batch (0/1: every batch; >1 trades the durability of up to N-1 acked batches for latency)")
		drainFor = flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on SIGTERM")
		quietOff = flag.Bool("quiet", false, "suppress the startup banner")
		plCache  = flag.Bool("place-cache", true, "memoize placement decisions across canonically-equivalent subproblems (placements are identical either way)")
	)
	flag.Parse()
	if err := run(*addr, *topoArg, *policy, *disc, *preempt, *logPath, *maxQueue, *snapshot, *fsyncEv, *drainFor, *quietOff, !*plCache); err != nil {
		fmt.Fprintln(os.Stderr, "toposerve:", err)
		os.Exit(1)
	}
}

// engine is the surface main needs from either serving engine — the
// single-core serve.Server or the sharded serve.MultiServer.
type engine interface {
	Handler() http.Handler
	BeginDrain()
	Close() error
	Replayed() int
	Durable() bool
}

func run(addr, topoArg, policyName, discipline string, preempt bool, logPath string, maxQueue, snapshotEvery, fsyncEvery int, drainFor time.Duration, quiet, noPlaceCache bool) error {
	spec, err := sweep.ParseTopologyArg(topoArg)
	if err != nil {
		return err
	}
	pol, err := schedcore.ParsePolicy(policyName)
	if err != nil {
		return err
	}
	cfg := serve.Config{
		Spec:              spec,
		Policy:            pol,
		Discipline:        discipline,
		Preemption:        preempt,
		LogPath:           logPath,
		MaxQueue:          maxQueue,
		SnapshotEvery:     snapshotEvery,
		FsyncEvery:        fsyncEvery,
		DisablePlaceCache: noPlaceCache,
	}
	var srv engine
	sharding := ""
	if spec.Domains != "" {
		ms, err := serve.NewMulti(cfg)
		if err != nil {
			return err
		}
		srv = ms
		sharding = fmt.Sprintf(", %d domains", ms.Domains())
	} else {
		s, err := serve.New(cfg)
		if err != nil {
			return err
		}
		srv = s
	}
	if !quiet {
		durable := "in-memory"
		if srv.Durable() {
			durable = fmt.Sprintf("log %s (%d records replayed)", logPath, srv.Replayed())
		}
		fmt.Printf("toposerve: %s under %s on %s, %s%s\n", spec.Key(), pol, addr, durable, sharding)
	}

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()

	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case s := <-sig:
		if !quiet {
			fmt.Printf("toposerve: %v: draining\n", s)
		}
		// Stop admitting, let in-flight requests finish, then write the
		// final snapshot so the next start replays nothing.
		srv.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), drainFor)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			srv.Close()
			return err
		}
		return srv.Close()
	}
}
