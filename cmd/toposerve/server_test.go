package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"sync"
	"testing"

	"gputopo/internal/cluster"
	"gputopo/internal/core"
	"gputopo/internal/job"
	"gputopo/internal/profile"
	"gputopo/internal/schedcore"
	"gputopo/internal/sweep"
	"gputopo/internal/workload"
)

// startServer builds a Server on the spec and wraps it in httptest.
func startServer(t *testing.T, topoArg string, policy schedcore.Policy) (*httptest.Server, *Server) {
	t.Helper()
	spec, err := sweep.ParseTopologyArg(topoArg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(spec, policy, schedcore.WallClock())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, srv
}

func post(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	js, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestEndToEndScenario1BurstMatchesSimulator is the acceptance test of
// the serving tentpole: a scenario-1-style burst submitted over HTTP in
// arrival order must receive exactly the placements a simulator-driven
// core produces for the same arrival order on the same substrate — the
// serving front-end and the simulator are two drivers of one core, so
// their decisions may differ only in clock readings, never in GPUs.
func TestEndToEndScenario1BurstMatchesSimulator(t *testing.T) {
	const topoArg = "minsky:2"
	spec, err := sweep.ParseTopologyArg(topoArg)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := spec.Build(spec.EffectiveMachines(1), false)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := workload.Generate(workload.GenConfig{Jobs: 30, Seed: 42, ArrivalRate: 10}, topo)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the simulator's construction of the core (ManualClock,
	// same profile store), driven submit-by-submit in arrival order with
	// no completions — exactly what the HTTP burst is.
	maxGPUs := topo.NumGPUs()
	if maxGPUs > 8 {
		maxGPUs = 8
	}
	mapper, err := core.NewMapper(profile.Generate(topo, maxGPUs), core.DefaultWeights())
	if err != nil {
		t.Fatal(err)
	}
	clk := schedcore.NewManualClock(0)
	ref := schedcore.New(schedcore.TopoAwareP, cluster.NewState(topo), mapper, schedcore.WithClock(clk))
	wantGPUs := map[string][]int{}
	for _, j := range jobs {
		clk.Set(j.Arrival)
		if err := ref.Submit(cloneJob(j)); err != nil {
			t.Fatal(err)
		}
		for _, d := range ref.Schedule() {
			if !d.Postponed {
				wantGPUs[d.Job.ID] = append([]int(nil), d.Placement.GPUs...)
			}
		}
	}

	ts, _ := startServer(t, topoArg, schedcore.TopoAwareP)
	gotGPUs := map[string][]int{}
	queued := 0
	for _, j := range jobs {
		resp, body := post(t, ts.URL+"/v1/jobs", jobRequest{
			ID:         j.ID,
			Model:      j.Model.String(),
			BatchSize:  j.BatchSize,
			GPUs:       j.GPUs,
			MinUtility: j.MinUtility,
			Iterations: j.Iterations,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: %d %s", j.ID, resp.StatusCode, body)
		}
		var jr jobResponse
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatal(err)
		}
		if jr.Status == "placed" {
			gotGPUs[j.ID] = jr.GPUs
		} else {
			queued++
		}
	}
	// Later rounds may also place previously queued jobs (the epoch moves
	// on every placement); those decisions live in the log, not in the
	// submitting POST's response.
	r, err := http.Get(ts.URL + "/v1/decisions")
	if err != nil {
		t.Fatal(err)
	}
	var dl struct {
		Decisions []decisionRecord `json:"decisions"`
	}
	if err := json.NewDecoder(r.Body).Decode(&dl); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	for _, d := range dl.Decisions {
		if d.Placed {
			if _, ok := gotGPUs[d.JobID]; !ok {
				gotGPUs[d.JobID] = d.GPUs
				queued--
			}
		}
	}

	if len(gotGPUs) != len(wantGPUs) {
		t.Fatalf("server placed %d jobs, reference placed %d", len(gotGPUs), len(wantGPUs))
	}
	for id, want := range wantGPUs {
		got, ok := gotGPUs[id]
		if !ok {
			t.Fatalf("job %s placed by reference but queued by server", id)
		}
		if !slices.Equal(got, want) {
			t.Fatalf("job %s: server GPUs %v, reference GPUs %v", id, got, want)
		}
	}
	if queued == 0 {
		t.Fatal("burst never saturated the cluster; the equivalence proves nothing about queuing")
	}
}

// cloneJob copies a generated job so the reference core and any other
// consumer never share mutable state.
func cloneJob(j *job.Job) *job.Job {
	c := job.New(j.ID, j.Model, j.BatchSize, j.GPUs, j.MinUtility, j.Arrival)
	c.Iterations = j.Iterations
	c.SingleNode = j.SingleNode
	c.AntiCollocate = j.AntiCollocate
	c.Parallelism = j.Parallelism
	return c
}

// TestServerLifecycle walks the full API surface: health, submit,
// duplicate, state, release with wake-up, withdraw, decisions log and
// the error paths.
func TestServerLifecycle(t *testing.T) {
	ts, _ := startServer(t, "minsky:1", schedcore.TopoAwareP)

	r, err := http.Get(ts.URL + "/healthz")
	if err != nil || r.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", r, err)
	}
	r.Body.Close()

	// Fill the machine (4 GPUs) with two 2-GPU jobs.
	for i := 1; i <= 2; i++ {
		resp, body := post(t, ts.URL+"/v1/jobs", jobRequest{ID: fmt.Sprintf("run%d", i), GPUs: 2, BatchSize: 4})
		var jr jobResponse
		if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &jr) != nil || jr.Status != "placed" {
			t.Fatalf("run%d: %d %s", i, resp.StatusCode, body)
		}
	}
	// A third 2-GPU job queues.
	resp, body := post(t, ts.URL+"/v1/jobs", jobRequest{ID: "waiter", GPUs: 2, BatchSize: 4})
	var jr jobResponse
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &jr) != nil {
		t.Fatalf("waiter: %d %s", resp.StatusCode, body)
	}
	if jr.Status != "queued" || jr.QueuePosition != 1 {
		t.Fatalf("waiter response: %+v", jr)
	}

	// Duplicate IDs conflict.
	if resp, _ := post(t, ts.URL+"/v1/jobs", jobRequest{ID: "waiter", GPUs: 1}); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate: %d", resp.StatusCode)
	}
	// Unknown model and malformed JSON are 400s.
	if resp, _ := post(t, ts.URL+"/v1/jobs", jobRequest{ID: "bad", GPUs: 1, Model: "ResNet"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown model: %d", resp.StatusCode)
	}
	if resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{"))); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: %v %v", resp, err)
	}
	// Invalid job fields (0 GPUs) are rejected by validation.
	if resp, _ := post(t, ts.URL+"/v1/jobs", jobRequest{ID: "zero", GPUs: 0}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero GPUs: %d", resp.StatusCode)
	}

	// State reflects 2 running + 1 queued.
	r, err = http.Get(ts.URL + "/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	var st stateResponse
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(st.Running) != 2 || len(st.Queue) != 1 || st.FreeGPUs != 0 {
		t.Fatalf("state: %+v", st)
	}
	if st.Topology != "minsky:1" || st.Policy != "TOPO-AWARE-P" {
		t.Fatalf("state header: %+v", st)
	}

	// Releasing a running job frees its GPUs and unblocks the waiter —
	// via the wake-up index, not a queue walk.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/run1", nil)
	r, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var rr releaseResponse
	if err := json.NewDecoder(r.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if rr.Status != "released" || !slices.Contains(rr.Unblocked, "waiter") {
		t.Fatalf("release: %+v", rr)
	}

	// Withdraw a queued job.
	resp, body = post(t, ts.URL+"/v1/jobs", jobRequest{ID: "cancelme", GPUs: 4, BatchSize: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancelme: %d %s", resp.StatusCode, body)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/cancelme", nil)
	r, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if rr.Status != "withdrawn" {
		t.Fatalf("withdraw: %+v", rr)
	}
	// Unknown deletes 404.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/nosuch", nil)
	r, _ = http.DefaultClient.Do(req)
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("delete nosuch: %d", r.StatusCode)
	}
	r.Body.Close()

	// The decision log saw every decision, in order, with timestamps.
	r, err = http.Get(ts.URL + "/v1/decisions?limit=100")
	if err != nil {
		t.Fatal(err)
	}
	var dl struct {
		Decisions []decisionRecord `json:"decisions"`
	}
	if err := json.NewDecoder(r.Body).Decode(&dl); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(dl.Decisions) == 0 {
		t.Fatal("empty decision log")
	}
	for i := 1; i < len(dl.Decisions); i++ {
		if dl.Decisions[i].Seq <= dl.Decisions[i-1].Seq {
			t.Fatal("decision log out of order")
		}
	}
	if resp, _ := http.Get(ts.URL + "/v1/decisions?limit=zero"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: %d", resp.StatusCode)
	}
}

// TestServerConcurrentSubmissions hammers the single-writer loop from
// many goroutines — under -race (CI runs it) this is the proof that the
// event-loop serialization protects the core. Conservation must hold:
// every job is either running or queued, and no GPU is double-owned.
func TestServerConcurrentSubmissions(t *testing.T) {
	ts, srv := startServer(t, "mix[minsky:2+dgx1:1]", schedcore.TopoAwareP)
	const n = 40
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := post(t, ts.URL+"/v1/jobs", jobRequest{
				ID: fmt.Sprintf("c%02d", i), GPUs: 1 + i%2, BatchSize: 1 + i%8,
			})
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("c%02d: %d %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var running, queued, free, gpus int
	srv.do(func() {
		st := srv.core.State()
		running = len(st.Jobs())
		queued = srv.core.QueueLen()
		free = st.FreeGPUCount()
		gpus = st.Topology().NumGPUs()
	})
	if running+queued != n {
		t.Fatalf("running %d + queued %d != submitted %d", running, queued, n)
	}
	var owned int
	srv.do(func() {
		st := srv.core.State()
		for _, id := range st.Jobs() {
			owned += len(st.Allocation(id).GPUs)
		}
	})
	if owned+free != gpus {
		t.Fatalf("owned %d + free %d != %d GPUs", owned, free, gpus)
	}
}

// TestDecisionRingWraps pushes the decision log past its capacity and
// checks the circular buffer drops oldest-first and flattens in order.
func TestDecisionRingWraps(t *testing.T) {
	ts, srv := startServer(t, "minsky:1", schedcore.TopoAwareP)
	srv.do(func() {
		j := cloneJob(job.New("ring", 0, 1, 1, 0, 0))
		for i := 0; i < decisionLogCap+10; i++ {
			srv.decSeq++
			r := decisionRecord{Seq: srv.decSeq, JobID: j.ID}
			if len(srv.decisions) == decisionLogCap {
				srv.decisions[srv.decHead] = r
				srv.decHead = (srv.decHead + 1) % decisionLogCap
			} else {
				srv.decisions = append(srv.decisions, r)
			}
		}
	})
	r, err := http.Get(ts.URL + "/v1/decisions")
	if err != nil {
		t.Fatal(err)
	}
	var dl struct {
		Decisions []decisionRecord `json:"decisions"`
	}
	if err := json.NewDecoder(r.Body).Decode(&dl); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(dl.Decisions) != decisionLogCap {
		t.Fatalf("ring holds %d, want %d", len(dl.Decisions), decisionLogCap)
	}
	if dl.Decisions[0].Seq != 11 {
		t.Fatalf("oldest surviving seq = %d, want 11 (first 10 dropped)", dl.Decisions[0].Seq)
	}
	for i := 1; i < len(dl.Decisions); i++ {
		if dl.Decisions[i].Seq != dl.Decisions[i-1].Seq+1 {
			t.Fatalf("ring not flattened in order at %d: %d after %d", i, dl.Decisions[i].Seq, dl.Decisions[i-1].Seq)
		}
	}
}
