// Command topoviz renders the physical GPU topologies: the hierarchy tree
// with link annotations, the nvidia-smi-style connectivity matrix, and the
// GPU-to-GPU distance/bandwidth tables the scheduler reasons over.
//
//	topoviz -topo minsky
//	topoviz -topo dgx1 -matrix
//	topoviz -topo cluster -machines 3
//	topoviz -mix minsky:2+dgx1:1
//	topoviz -parse matrix.txt
//	topoviz -parse matrix.txt -machines 4
package main

import (
	"flag"
	"fmt"
	"os"

	"gputopo/internal/topology"
)

func main() {
	topoName := flag.String("topo", "minsky", "topology: minsky, dgx1, pcie, cluster")
	machines := flag.Int("machines", 0, "machine count: for -topo cluster (default 2) and -parse (default 1, >1 stamps the parsed machine into a cluster)")
	matrix := flag.Bool("matrix", false, "print the nvidia-smi-style connectivity matrix")
	parse := flag.String("parse", "", "parse a connectivity-matrix file instead of building")
	mix := flag.String("mix", "", "build a heterogeneous cluster from builder:count pairs, e.g. minsky:2+dgx1:1 (overrides -topo)")
	flag.Parse()

	if err := run(*topoName, *machines, *matrix, *parse, *mix); err != nil {
		fmt.Fprintln(os.Stderr, "topoviz:", err)
		os.Exit(1)
	}
}

func run(topoName string, machines int, matrix bool, parse, mix string) error {
	var topo *topology.Topology
	switch {
	case parse != "":
		data, err := os.ReadFile(parse)
		if err != nil {
			return err
		}
		if machines > 1 {
			topo, err = topology.MatrixCluster(string(data), machines)
		} else {
			topo, err = topology.ParseMatrix(string(data))
		}
		if err != nil {
			return err
		}
	case mix != "":
		specs, err := topology.ParseMix(mix)
		if err != nil {
			return err
		}
		topo, err = topology.HeterogeneousCluster(specs)
		if err != nil {
			return err
		}
	case topoName == "minsky":
		topo = topology.Power8Minsky()
	case topoName == "dgx1":
		topo = topology.DGX1()
	case topoName == "pcie":
		topo = topology.PCIeBox()
	case topoName == "cluster":
		if machines < 1 {
			machines = 2
		}
		topo = topology.Cluster(machines, topology.KindMinsky)
	default:
		return fmt.Errorf("unknown topology %q", topoName)
	}

	fmt.Println(topo.RenderTree())
	if matrix && topo.NumMachines() > 1 {
		// RenderMatrix is single-machine format: cross-machine pairs
		// would render as SYS and parse back as one machine.
		return fmt.Errorf("-matrix renders single machines only; %s has %d machines", topo.Name, topo.NumMachines())
	}
	if matrix || (parse != "" && topo.NumMachines() == 1) {
		fmt.Println(topo.RenderMatrix())
	}

	n := topo.NumGPUs()
	if n <= 16 {
		fmt.Println("GPU-to-GPU distance / effective bandwidth (GB/s) / P2P:")
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					fmt.Printf("%14s", "-")
					continue
				}
				fmt.Printf("  %4.0f/%4.1f/%-2v", topo.Distance(i, j), topo.EffectiveBandwidth(i, j), boolMark(topo.P2P(i, j)))
			}
			fmt.Println()
		}
	}
	return nil
}

func boolMark(b bool) string {
	if b {
		return "y"
	}
	return "n"
}
