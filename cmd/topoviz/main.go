// Command topoviz renders the physical GPU topologies: the hierarchy tree
// with link annotations, the nvidia-smi-style connectivity matrix, and the
// GPU-to-GPU distance/bandwidth tables the scheduler reasons over.
//
//	topoviz -topo minsky
//	topoviz -topo dgx1 -matrix
//	topoviz -parse matrix.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"gputopo/internal/topology"
)

func main() {
	topoName := flag.String("topo", "minsky", "topology: minsky, dgx1, pcie, cluster")
	machines := flag.Int("machines", 2, "machines for -topo cluster")
	matrix := flag.Bool("matrix", false, "print the nvidia-smi-style connectivity matrix")
	parse := flag.String("parse", "", "parse a connectivity-matrix file instead of building")
	flag.Parse()

	if err := run(*topoName, *machines, *matrix, *parse); err != nil {
		fmt.Fprintln(os.Stderr, "topoviz:", err)
		os.Exit(1)
	}
}

func run(topoName string, machines int, matrix bool, parse string) error {
	var topo *topology.Topology
	switch {
	case parse != "":
		data, err := os.ReadFile(parse)
		if err != nil {
			return err
		}
		topo, err = topology.ParseMatrix(string(data))
		if err != nil {
			return err
		}
	case topoName == "minsky":
		topo = topology.Power8Minsky()
	case topoName == "dgx1":
		topo = topology.DGX1()
	case topoName == "pcie":
		topo = topology.PCIeBox()
	case topoName == "cluster":
		topo = topology.Cluster(machines, topology.KindMinsky)
	default:
		return fmt.Errorf("unknown topology %q", topoName)
	}

	fmt.Println(topo.RenderTree())
	if matrix || parse != "" {
		fmt.Println(topo.RenderMatrix())
	}

	n := topo.NumGPUs()
	if n <= 16 {
		fmt.Println("GPU-to-GPU distance / effective bandwidth (GB/s) / P2P:")
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					fmt.Printf("%14s", "-")
					continue
				}
				fmt.Printf("  %4.0f/%4.1f/%-2v", topo.Distance(i, j), topo.EffectiveBandwidth(i, j), boolMark(topo.P2P(i, j)))
			}
			fmt.Println()
		}
	}
	return nil
}

func boolMark(b bool) string {
	if b {
		return "y"
	}
	return "n"
}
