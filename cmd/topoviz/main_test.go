package main

import (
	"os"
	"path/filepath"
	"testing"

	"gputopo/internal/topology"
)

func TestRunBuilders(t *testing.T) {
	for _, name := range []string{"minsky", "dgx1", "pcie"} {
		if err := run(name, 0, true, "", ""); err != nil {
			t.Fatalf("run(%q): %v", name, err)
		}
	}
	if err := run("cluster", 0, false, "", ""); err != nil {
		t.Fatalf("run(cluster): %v", err)
	}
	// The connectivity matrix is single-machine format; a cluster must
	// refuse it rather than render misleading SYS-everywhere output.
	if err := run("cluster", 0, true, "", ""); err == nil {
		t.Fatal("-matrix on a cluster did not error")
	}
	if err := run("no-such-topo", 0, false, "", ""); err == nil {
		t.Fatal("unknown topology did not error")
	}
}

func TestRunMix(t *testing.T) {
	if err := run("", 0, false, "", "minsky:2+dgx1:1"); err != nil {
		t.Fatal(err)
	}
	if err := run("", 0, false, "", "bogus:1"); err == nil {
		t.Fatal("bad mix did not error")
	}
}

func TestRunParse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.matrix")
	if err := os.WriteFile(path, []byte(topology.Power8Minsky().RenderMatrix()), 0o644); err != nil {
		t.Fatal(err)
	}
	// Single parsed machine and a stamped 3-machine cluster.
	if err := run("", 0, false, path, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("", 3, false, path, ""); err != nil {
		t.Fatal(err)
	}
	if err := run("", 0, false, filepath.Join(t.TempDir(), "absent"), ""); err == nil {
		t.Fatal("missing matrix file did not error")
	}
}
