// Command topobench regenerates every table and figure of the paper's
// evaluation on the simulated substrate. Select an experiment with -fig:
//
//	topobench -fig 3         Figure 3  (compute/communication breakdown)
//	topobench -fig 4         Figure 4  (pack vs spread speedup)
//	topobench -fig 5         Figure 5  (NVLink bandwidth over time)
//	topobench -fig 6         Figure 6  (co-location interference)
//	topobench -fig pcie      §3.2      (NVLink vs PCIe machines)
//	topobench -fig mp        §2        (model-parallel extension study)
//	topobench -fig 8         Figure 8  (prototype, Table 1 workload)
//	topobench -fig 9         Figure 9  (prototype vs simulation validation)
//	topobench -fig 10        Figure 10 (scenario 1: 100 jobs, 5 machines)
//	topobench -fig 11        Figure 11 (scenario 2: 10k jobs, 1k machines)
//	topobench -fig overhead  §5.5.3    (decision-time overhead)
//	topobench -fig ablations design-choice ablations
//	topobench -fig all       everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"gputopo/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "experiment to run: 3,4,5,6,pcie,8,9,10,11,overhead,ablations,all")
	seed := flag.Uint64("seed", 42, "random seed for workload generation and jitter")
	scenario2Jobs := flag.Int("s2-jobs", 10000, "scenario 2 job count")
	scenario2Machines := flag.Int("s2-machines", 1000, "scenario 2 machine count")
	flag.Parse()

	if err := run(*fig, *seed, *scenario2Jobs, *scenario2Machines); err != nil {
		fmt.Fprintln(os.Stderr, "topobench:", err)
		os.Exit(1)
	}
}

func run(fig string, seed uint64, s2Jobs, s2Machines int) error {
	all := fig == "all"
	did := false

	if all || fig == "3" {
		fmt.Println(experiments.RenderFig3(experiments.Fig3Breakdown()))
		did = true
	}
	if all || fig == "4" {
		fmt.Println(experiments.RenderFig4(experiments.Fig4PackSpread()))
		did = true
	}
	if all || fig == "5" {
		series, err := experiments.Fig5Bandwidth(seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig5(series))
		did = true
	}
	if all || fig == "6" {
		fmt.Println(experiments.RenderFig6(experiments.Fig6Interference()))
		did = true
	}
	if all || fig == "pcie" {
		fmt.Println(experiments.RenderPCIe(experiments.PCIeComparison()))
		did = true
	}
	if all || fig == "mp" {
		fmt.Println(experiments.RenderModelParallel(experiments.ModelParallelStudy()))
		did = true
	}
	if all || fig == "8" {
		mp, _, err := experiments.Fig8Prototype(seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderFig8(mp))
		did = true
	}
	if all || fig == "9" {
		rows, err := experiments.Validate(seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderValidation(rows))
		did = true
	}
	if all || fig == "10" {
		mp, err := experiments.Scenario(100, 5, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderScenario("Figure 10 — Scenario 1: 100 jobs, 5 machines", mp))
		did = true
	}
	if all || fig == "11" {
		mp, err := experiments.Scenario(s2Jobs, s2Machines, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderScenario(
			fmt.Sprintf("Figure 11 — Scenario 2: %d jobs, %d machines", s2Jobs, s2Machines), mp))
		did = true
	}
	if all || fig == "overhead" {
		rows, err := experiments.Overhead(1000, 100, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderOverhead(rows))
		did = true
	}
	if all || fig == "ablations" {
		wr, err := experiments.LevelWeightAblation([]float64{5, 10, 20, 50, 200})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderWeightAblation(wr))
		ar, err := experiments.AlphaSweep([]float64{0, 0.2, 1.0 / 3, 0.5, 0.8}, 100, 5, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderAlphaSweep(ar))
		tr, err := experiments.ThresholdSweep([]float64{0, 0.3, 0.5, 0.7, 0.9}, 100, 5, seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderThresholdSweep(tr))
		did = true
	}

	if !did {
		return fmt.Errorf("unknown experiment %q", fig)
	}
	return nil
}
