// Command gpuproto is the equivalent of the paper prototype's
// `python main.py` (artifact appendix A.3): it loads a declarative
// experiment document — system config (with the prototype/simulation
// switch), one config per scheduling algorithm, and the JSON job manifests
// — runs every configured algorithm, and prints the comparison.
//
//	gpuproto -experiment experiment.json
//	gpuproto -example > experiment.json   # emit a sample document
package main

import (
	"fmt"
	"os"

	"flag"

	"gputopo/internal/manifest"
	"gputopo/internal/metrics"
	"gputopo/internal/simulator"
)

func main() {
	expFile := flag.String("experiment", "", "experiment JSON document")
	example := flag.Bool("example", false, "print a sample experiment document and exit")
	timeline := flag.Bool("timeline", false, "print GPU allocation timelines")
	flag.Parse()

	if *example {
		if err := manifest.Write(os.Stdout, sampleExperiment()); err != nil {
			fmt.Fprintln(os.Stderr, "gpuproto:", err)
			os.Exit(1)
		}
		return
	}
	if *expFile == "" {
		fmt.Fprintln(os.Stderr, "gpuproto: -experiment is required (or -example)")
		os.Exit(2)
	}
	if err := run(*expFile, *timeline); err != nil {
		fmt.Fprintln(os.Stderr, "gpuproto:", err)
		os.Exit(1)
	}
}

func run(path string, timeline bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	exp, err := manifest.Read(f)
	if err != nil {
		return err
	}

	mode := "prototype"
	if exp.System.Simulation {
		mode = "simulation"
	}
	fmt.Printf("running %d algorithm(s) in %s mode on %q with %d job(s)\n\n",
		len(exp.Algorithms), mode, exp.System.Topology, len(exp.Jobs))

	runs, err := exp.Run()
	if err != nil {
		return err
	}

	topo, err := exp.BuildTopology()
	if err != nil {
		return err
	}
	results := make([]*simulator.Result, 0, len(runs))
	for _, r := range runs {
		results = append(results, r.Result)
		if timeline {
			fmt.Println(metrics.Timeline(r.Result, topo.NumGPUs(), 72))
		}
	}
	fmt.Println(metrics.CompareRuns(results))
	return nil
}

func sampleExperiment() *manifest.Experiment {
	return &manifest.Experiment{
		System: manifest.SystemConfig{
			Simulation: false,
			Topology:   "minsky",
		},
		Algorithms: []manifest.AlgorithmConfig{
			{Name: "FCFS"},
			{Name: "TOPO-AWARE-P"},
		},
		Jobs: []manifest.JobManifest{
			{ID: "J0", Model: "AlexNet", BatchSize: 1, GPUs: 1, MinUtility: 0.3, Arrival: 0.51, Iterations: 2500},
			{ID: "J1", Model: "GoogLeNet", BatchSize: 4, GPUs: 1, MinUtility: 0.3, Arrival: 15.03, Iterations: 2100},
			{ID: "J2", Model: "AlexNet", BatchSize: 1, GPUs: 1, MinUtility: 0.3, Arrival: 24.36, Iterations: 2500},
			{ID: "J3", Model: "AlexNet", BatchSize: 4, GPUs: 2, MinUtility: 0.5, Arrival: 25.33, Iterations: 1000},
			{ID: "J4", Model: "AlexNet", BatchSize: 1, GPUs: 2, MinUtility: 0.5, Arrival: 29.33, Iterations: 1000},
			{ID: "J5", Model: "CaffeRef", BatchSize: 1, GPUs: 2, MinUtility: 0.5, Arrival: 29.89, Iterations: 1000},
		},
	}
}
