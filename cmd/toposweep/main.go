// Command toposweep runs concurrent scenario sweeps over the simulated
// cluster: grids of policy × topology × cluster size × job count ×
// α-weights × postponement thresholds × seed replicas, fanned across a
// bounded worker pool with deterministic per-point seeds. The same grid
// produces byte-identical artifacts at any worker count, so sweeps are
// comparable across machines and commits — and diffable.
//
//	toposweep -list                           show the available grids
//	toposweep -list topology                  dump a named grid as a JSON spec
//	toposweep -grid default -workers 8        run a named grid
//	toposweep -grid hetero                    heterogeneous (mixed-machine) clusters
//	toposweep -grid @spec.json -out out.json  run an ad-hoc grid spec file
//	toposweep -smoke                          CI shorthand for -grid smoke
//	toposweep -grid alpha -csv alpha.csv      write a per-point CSV
//	toposweep -diff old.json new.json         regression-diff two artifacts
//	toposweep -smoke -bench BENCH_sweep.json  record wall-clock + jobs/sec
//	toposweep -diff-bench -tol 0.5 old new    perf-diff two bench artifacts
//	toposweep -smoke -cpuprofile cpu.pprof    profile the sweep (also -memprofile)
//
// Topology specs in grid files cover homogeneous builders, heterogeneous
// machine mixes ("mix": [{"kind": "minsky", "count": 2}, ...]) and
// discovered machines parsed from nvidia-smi-style connectivity-matrix
// files ("matrix_file": "path/to/machine.matrix", resolved against the
// spec file's directory with a working-directory fallback).
//
// The grid spec file format is documented in docs/sweeps.md; runnable
// examples live in examples/sweeps/.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"gputopo/internal/sweep"
)

func main() {
	var (
		gridName = flag.String("grid", "default", "named grid to run (see -list), or @file.json for a grid spec file")
		workers  = flag.Int("workers", runtime.NumCPU(), "worker pool size")
		out      = flag.String("out", "", "write the JSON artifact to this path")
		csv      = flag.String("csv", "", "write the per-point CSV to this path")
		smoke    = flag.Bool("smoke", false, "run the sub-minute CI smoke grid (overrides -grid)")
		seed     = flag.Uint64("seed", 42, "base seed; every point derives its own seed from it (overrides a spec file's base_seed when set explicitly)")
		list     = flag.Bool("list", false, "list the available grids and exit; with a grid name argument, dump that grid as a JSON spec template")
		quiet    = flag.Bool("quiet", false, "suppress per-point progress")
		diff     = flag.Bool("diff", false, "diff two JSON artifacts: toposweep -diff old.json new.json; exits 2 on regression (flags go before the file arguments)")
		tol      = flag.Float64("tol", 0, "relative tolerance for -diff/-diff-bench (0 = exact)")
		tolStd   = flag.Float64("tol-stddev", 0, "with -diff: relative tolerance for the .stddev distribution metrics (0 = use -tol)")
		tolP95   = flag.Float64("tol-p95", 0, "with -diff: relative tolerance for the .p95 distribution metrics (0 = use -tol)")
		tolMet   = flag.String("tol-metric", "", "per-metric tolerance overrides for -diff/-diff-bench, e.g. makespan_s=0.05, makespan_s.p95=0.2 or allocs_per_op=0.1 (comma-separated)")
		wallOff  = flag.Bool("wallclock-off", false, "with -diff-bench: skip wall-clock metrics (elapsed_sec, points/jobs per sec, ns_per_op) and gate allocation counts only — for noisy CI runners; also enabled by TOPOSWEEP_WALLCLOCK_OFF=1")
		strict   = flag.Bool("strict", false, "with -diff, also exit 2 on improvements — any delta is a behavior change (used by the CI golden-baseline gate)")
		bench    = flag.String("bench", "", "write a perf-tracking artifact (wall-clock, points/sec, jobs/sec) to this path after the run")
		benchGo  = flag.String("bench-go", "", "with -bench: merge `go test -bench` output from this file into the artifact (ns/op, B/op, allocs/op)")
		benchNm  = flag.String("bench-name", "", "with -bench: record the grid entry under this name instead of the grid's own (lets one artifact hold the same grid under different configurations, e.g. shard/d1 vs shard/d8)")
		benchApp = flag.Bool("bench-append", false, "with -bench: merge into an existing artifact instead of overwriting (entries with the same name are replaced)")
		diffB    = flag.Bool("diff-bench", false, "perf-diff two bench artifacts: toposweep -diff-bench -tol 0.5 old.json new.json; exits 2 on regression beyond tolerance")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the sweep to this path")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile (after the sweep) to this path")
		plCache  = flag.Bool("place-cache", true, "canonical-shape placement cache; -place-cache=false re-runs the mapper on every decision (deterministic metrics are identical either way — the cache-bench CI job measures the wall-clock ratio)")
	)
	flag.Parse()

	switch {
	case *diffB:
		off := *wallOff || os.Getenv("TOPOSWEEP_WALLCLOCK_OFF") == "1"
		res, err := diffBenchFiles(os.Stdout, flag.Args(), *tol, *tolMet, off)
		if err != nil {
			fmt.Fprintln(os.Stderr, "toposweep:", err)
			os.Exit(1)
		}
		if res.HasRegressions() {
			os.Exit(2)
		}
	case *diff:
		res, err := diffFiles(os.Stdout, flag.Args(), diffTols{tol: *tol, stddev: *tolStd, p95: *tolP95, perMetric: *tolMet})
		if err != nil {
			fmt.Fprintln(os.Stderr, "toposweep:", err)
			os.Exit(1)
		}
		if res.HasRegressions() || (*strict && (res.Improvements > 0 || len(res.AddedCells) > 0)) {
			os.Exit(2)
		}
	case *list:
		if err := listGrids(os.Stdout, flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "toposweep:", err)
			os.Exit(1)
		}
	default:
		seedSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "seed" {
				seedSet = true
			}
		})
		opts := runOpts{
			out: *out, csv: *csv, bench: *bench, benchGo: *benchGo,
			benchName: *benchNm, benchAppend: *benchApp,
			cpuProfile: *cpuProf, memProfile: *memProf,
			smoke: *smoke, seed: *seed, seedSet: seedSet, quiet: *quiet,
			workers: *workers, noPlaceCache: !*plCache,
		}
		if err := run(os.Stdout, *gridName, opts); err != nil {
			fmt.Fprintln(os.Stderr, "toposweep:", err)
			os.Exit(1)
		}
	}
}

// listGrids prints the registered grids in sorted order, or — given a
// grid name — dumps that grid as an indented JSON spec usable as a
// template for -grid @file.json. An unknown name is an error.
func listGrids(w io.Writer, args []string) error {
	if len(args) > 1 {
		return fmt.Errorf("-list takes at most one grid name, got %q", args)
	}
	if len(args) == 1 {
		g, err := sweep.Named(args[0], 42)
		if err != nil {
			return err
		}
		js, err := g.SpecJSON()
		if err != nil {
			return err
		}
		_, err = w.Write(js)
		return err
	}
	for _, name := range sweep.GridNames() {
		fmt.Fprintf(w, "  %-12s %s\n", name, sweep.GridDescription(name))
	}
	return nil
}

// diffTols bundles the result-differ tolerance flags.
type diffTols struct {
	tol, stddev, p95 float64
	perMetric        string
}

// parseTolerances builds diff options from the tolerance flags.
func parseTolerances(tols diffTols) (sweep.DiffOptions, error) {
	opt := sweep.DiffOptions{RelTol: tols.tol, StddevRelTol: tols.stddev, P95RelTol: tols.p95}
	if tols.perMetric == "" {
		return opt, nil
	}
	known := map[string]bool{}
	for _, m := range sweep.DiffMetricNames() {
		known[m] = true
	}
	opt.PerMetric = map[string]float64{}
	for _, pair := range strings.Split(tols.perMetric, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return opt, fmt.Errorf("-tol-metric entry %q is not metric=value", pair)
		}
		if !known[name] {
			return opt, fmt.Errorf("-tol-metric: unknown metric %q (use one of %v)", name, sweep.DiffMetricNames())
		}
		t, err := strconv.ParseFloat(val, 64)
		if err != nil || t < 0 {
			return opt, fmt.Errorf("-tol-metric: bad tolerance %q for %s", val, name)
		}
		opt.PerMetric[name] = t
	}
	return opt, nil
}

// diffFiles loads two JSON artifacts, diffs them under the tolerances and
// writes the markdown delta report. The caller decides the exit code from
// the returned result.
func diffFiles(w io.Writer, args []string, tols diffTols) (*sweep.DiffResult, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("-diff needs exactly two artifacts: toposweep -diff old.json new.json")
	}
	opt, err := parseTolerances(tols)
	if err != nil {
		return nil, err
	}
	reports := make([]*sweep.Report, 2)
	for i, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		reports[i], err = sweep.LoadReport(data, path)
		if err != nil {
			return nil, err
		}
	}
	res := sweep.Diff(reports[0], reports[1], opt)
	res.OldName, res.NewName = args[0], args[1]
	_, err = io.WriteString(w, res.Markdown())
	return res, err
}

// resolveGrid turns the -grid argument into a Grid: a registered name, or
// a spec file when prefixed with @.
func resolveGrid(gridName string, seed uint64, seedSet bool) (sweep.Grid, error) {
	if path, ok := strings.CutPrefix(gridName, "@"); ok {
		g, err := sweep.LoadGridSpec(path)
		if err != nil {
			return sweep.Grid{}, err
		}
		if seedSet {
			g.BaseSeed = seed
		}
		return g, nil
	}
	return sweep.Named(gridName, seed)
}

// runOpts bundles the output-producing flags of a sweep run.
type runOpts struct {
	workers                int
	out, csv               string
	bench, benchGo         string
	benchName              string
	benchAppend            bool
	cpuProfile, memProfile string
	smoke, seedSet, quiet  bool
	noPlaceCache           bool
	seed                   uint64
}

func run(w io.Writer, gridName string, o runOpts) error {
	if o.benchGo != "" && o.bench == "" {
		// Fail before the sweep runs — on a scenario-2 grid this mistake
		// would otherwise surface only after hours of simulation.
		return fmt.Errorf("-bench-go requires -bench")
	}
	if o.smoke {
		gridName = "smoke"
	}
	grid, err := resolveGrid(gridName, o.seed, o.seedSet)
	if err != nil {
		return err
	}

	opt := sweep.Options{Workers: o.workers, DisablePlaceCache: o.noPlaceCache}
	if !o.quiet {
		total := len(grid.Points())
		last := -1
		opt.Progress = func(done, _ int) {
			// Redraw at most 100 times regardless of grid size.
			if pct := done * 100 / total; pct != last || done == total {
				last = pct
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d points", grid.Name, done, total)
			}
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	start := time.Now()
	rep, err := sweep.Run(grid, opt)
	if err != nil {
		return err
	}
	rep.Elapsed = time.Since(start)

	if o.memProfile != "" {
		f, err := os.Create(o.memProfile)
		if err != nil {
			return err
		}
		runtime.GC() // settle the heap so the profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		f.Close()
	}

	fmt.Fprintln(w, rep.Render())

	if o.out != "" {
		js, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, js, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s (%d bytes)\n", o.out, len(js))
	}
	if o.csv != "" {
		if err := os.WriteFile(o.csv, rep.CSV(), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", o.csv)
	}
	if o.bench != "" {
		if err := writeBench(w, rep, o); err != nil {
			return err
		}
	}
	return nil
}

// writeBench distills the run into the perf-tracking artifact, merging
// parsed `go test -bench` output when provided. benchName renames the
// grid entry and benchAppend folds it into an existing artifact — the
// pair lets one artifact carry the same grid under several
// configurations (the shard bench records shard/dN per domain count).
func writeBench(w io.Writer, rep *sweep.Report, o runOpts) error {
	br := &sweep.BenchReport{}
	if o.benchAppend {
		if data, err := os.ReadFile(o.bench); err == nil {
			prev, err := sweep.LoadBenchReport(data, o.bench)
			if err != nil {
				return err
			}
			br = prev
		}
	}
	gb := sweep.NewGridBench(rep)
	if o.benchName != "" {
		gb.Grid = o.benchName
	}
	br.AddGrid(gb)
	if o.benchGo != "" {
		text, err := os.ReadFile(o.benchGo)
		if err != nil {
			return fmt.Errorf("-bench-go: %w", err)
		}
		br.Benchmarks = sweep.ParseGoBenchOutput(string(text))
		if len(br.Benchmarks) == 0 {
			return fmt.Errorf("-bench-go: no benchmark lines found in %s", o.benchGo)
		}
	}
	js, err := br.JSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(o.bench, js, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s (%d grid(s), %d benchmark(s))\n", o.bench, len(br.Grids), len(br.Benchmarks))
	return nil
}

// diffBenchFiles loads two bench artifacts and perf-diffs them under the
// tolerances; callers decide the exit code from the result.
func diffBenchFiles(w io.Writer, args []string, tol float64, tolMetric string, wallClockOff bool) (*sweep.DiffResult, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("-diff-bench needs exactly two artifacts: toposweep -diff-bench old.json new.json")
	}
	opt := sweep.BenchDiffOptions{RelTol: tol, WallClockOff: wallClockOff}
	if tolMetric != "" {
		known := map[string]bool{}
		for _, m := range sweep.BenchDiffMetricNames() {
			known[m] = true
		}
		opt.PerMetric = map[string]float64{}
		for _, pair := range strings.Split(tolMetric, ",") {
			name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok {
				return nil, fmt.Errorf("-tol-metric entry %q is not metric=value", pair)
			}
			if !known[name] {
				return nil, fmt.Errorf("-tol-metric: unknown bench metric %q (use one of %v)", name, sweep.BenchDiffMetricNames())
			}
			t, err := strconv.ParseFloat(val, 64)
			if err != nil || t < 0 {
				return nil, fmt.Errorf("-tol-metric: bad tolerance %q for %s", val, name)
			}
			opt.PerMetric[name] = t
		}
	}
	reports := make([]*sweep.BenchReport, 2)
	for i, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		reports[i], err = sweep.LoadBenchReport(data, path)
		if err != nil {
			return nil, err
		}
	}
	res := sweep.DiffBench(reports[0], reports[1], opt)
	res.OldName, res.NewName = args[0], args[1]
	_, err := io.WriteString(w, res.Markdown())
	return res, err
}
