// Command toposweep runs concurrent scenario sweeps over the simulated
// cluster: grids of policy × cluster size × job count × α-weights ×
// postponement thresholds × seed replicas, fanned across a bounded worker
// pool with deterministic per-point seeds. The same grid produces
// byte-identical artifacts at any worker count, so sweeps are comparable
// across machines and commits.
//
//	toposweep -list                          show the available grids
//	toposweep -grid default -workers 8       run a named grid
//	toposweep -grid smoke -out smoke.json    write the JSON artifact
//	toposweep -smoke                         CI shorthand for -grid smoke
//	toposweep -grid alpha -csv alpha.csv     write a per-point CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"gputopo/internal/sweep"
)

func main() {
	var (
		gridName = flag.String("grid", "default", "named grid to run (see -list)")
		workers  = flag.Int("workers", runtime.NumCPU(), "worker pool size")
		out      = flag.String("out", "", "write the JSON artifact to this path")
		csv      = flag.String("csv", "", "write the per-point CSV to this path")
		smoke    = flag.Bool("smoke", false, "run the sub-minute CI smoke grid (overrides -grid)")
		seed     = flag.Uint64("seed", 42, "base seed; every point derives its own seed from it")
		list     = flag.Bool("list", false, "list the available grids and exit")
		quiet    = flag.Bool("quiet", false, "suppress per-point progress")
	)
	flag.Parse()

	if *list {
		for _, name := range sweep.GridNames() {
			fmt.Printf("  %-10s %s\n", name, sweep.GridDescription(name))
		}
		return
	}
	if err := run(*gridName, *workers, *out, *csv, *smoke, *seed, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "toposweep:", err)
		os.Exit(1)
	}
}

func run(gridName string, workers int, out, csv string, smoke bool, seed uint64, quiet bool) error {
	if smoke {
		gridName = "smoke"
	}
	grid, err := sweep.Named(gridName, seed)
	if err != nil {
		return err
	}

	opt := sweep.Options{Workers: workers}
	if !quiet {
		total := len(grid.Points())
		last := -1
		opt.Progress = func(done, _ int) {
			// Redraw at most 100 times regardless of grid size.
			if pct := done * 100 / total; pct != last || done == total {
				last = pct
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d points", gridName, done, total)
			}
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	start := time.Now()
	rep, err := sweep.Run(grid, opt)
	if err != nil {
		return err
	}
	rep.Elapsed = time.Since(start)

	fmt.Println(rep.Render())

	if out != "" {
		js, err := rep.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, js, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", out, len(js))
	}
	if csv != "" {
		if err := os.WriteFile(csv, rep.CSV(), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", csv)
	}
	return nil
}
