package main

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"gputopo/internal/sweep"
)

func TestListGridsSortedAndComplete(t *testing.T) {
	var buf bytes.Buffer
	if err := listGrids(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		names = append(names, strings.Fields(line)[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("grid listing not sorted: %v", names)
	}
	if len(names) != len(sweep.GridNames()) {
		t.Fatalf("listing has %d grids, registry has %d", len(names), len(sweep.GridNames()))
	}
}

func TestListGridsDumpsSpecTemplate(t *testing.T) {
	var buf bytes.Buffer
	if err := listGrids(&buf, []string{"topology"}); err != nil {
		t.Fatal(err)
	}
	g, err := sweep.ParseGridSpec(buf.Bytes())
	if err != nil {
		t.Fatalf("dumped spec does not parse back: %v", err)
	}
	if g.Name != "topology" || len(g.Topologies) != 3 {
		t.Fatalf("round-tripped grid %q with %d topologies", g.Name, len(g.Topologies))
	}
}

func TestListGridsUnknownNameErrors(t *testing.T) {
	if err := listGrids(&bytes.Buffer{}, []string{"no-such-grid"}); err == nil {
		t.Fatal("unknown grid name did not error")
	}
	if err := listGrids(&bytes.Buffer{}, []string{"a", "b"}); err == nil {
		t.Fatal("two positional args did not error")
	}
}

func TestRunUnknownGridErrors(t *testing.T) {
	if err := run(&bytes.Buffer{}, "no-such-grid", runOpts{workers: 1, seed: 1, quiet: true}); err == nil {
		t.Fatal("unknown grid name did not error")
	}
}

// writeSpec drops a tiny single-cell grid spec into a temp dir.
func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const tinySpec = `{
  "name": "tiny",
  "policies": ["TOPO-AWARE"],
  "machines": [1],
  "jobs": [5],
  "base_seed": 7,
  "rate_per_machine": 2
}`

func TestRunGridSpecFile(t *testing.T) {
	path := writeSpec(t, tinySpec)
	outPath := filepath.Join(filepath.Dir(path), "out.json")
	var buf bytes.Buffer
	if err := run(&buf, "@"+path, runOpts{workers: 2, out: outPath, quiet: true}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sweep.LoadReport(data, outPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grid.Name != "tiny" || len(rep.Points) != 1 {
		t.Fatalf("artifact grid %q with %d points", rep.Grid.Name, len(rep.Points))
	}
	if rep.Grid.BaseSeed != 7 {
		t.Fatalf("spec base_seed overridden to %d without an explicit -seed", rep.Grid.BaseSeed)
	}
}

// TestRunHeteroGridSpecFile drives a mixed-machine + discovered-matrix
// spec through the CLI path end to end.
func TestRunHeteroGridSpecFile(t *testing.T) {
	dir := t.TempDir()
	matrixPath := filepath.Join(dir, "machine.matrix")
	matrix := "     GPU0  GPU1  GPU2  GPU3\n" +
		"GPU0 X     NV2   SYS   SYS\n" +
		"GPU1 NV2   X     SYS   SYS\n" +
		"GPU2 SYS   SYS   X     NV2\n" +
		"GPU3 SYS   SYS   NV2   X\n"
	if err := os.WriteFile(matrixPath, []byte(matrix), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := `{
  "name": "hetero-tiny",
  "policies": ["TOPO-AWARE-P"],
  "topologies": [
    {"mix": [{"kind": "minsky", "count": 1}, {"kind": "pcie", "count": 1}]},
    {"matrix_file": ` + strconv.Quote(matrixPath) + `, "machines": 2}
  ],
  "jobs": [5],
  "base_seed": 7,
  "rate_per_machine": 2
}`
	path := writeSpec(t, spec)
	outPath := filepath.Join(dir, "out.json")
	if err := run(&bytes.Buffer{}, "@"+path, runOpts{workers: 2, out: outPath, quiet: true}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sweep.LoadReport(data, outPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("artifact has %d points, want 2", len(rep.Points))
	}
	if got := rep.Points[0].Topology.Key(); got != "mix[minsky:1+pcie:1]" {
		t.Fatalf("first point topology %q", got)
	}
	if rep.Points[0].Machines != 2 || rep.Points[1].Machines != 2 {
		t.Fatalf("machine counts %d/%d, want 2/2", rep.Points[0].Machines, rep.Points[1].Machines)
	}
}

// TestRunBadHeteroSpecFails covers the CLI-visible validation error
// paths: a missing matrix file and a mix/builder conflict both abort
// before any simulation runs.
func TestRunBadHeteroSpecFails(t *testing.T) {
	missing := writeSpec(t, `{"topologies": [{"matrix_file": "no/such.matrix"}]}`)
	if err := run(&bytes.Buffer{}, "@"+missing, runOpts{workers: 1, quiet: true}); err == nil {
		t.Fatal("missing matrix file did not error")
	}
	conflict := writeSpec(t, `{"topologies": [{"builder": "minsky", "mix": [{"kind": "dgx1", "count": 1}]}]}`)
	if err := run(&bytes.Buffer{}, "@"+conflict, runOpts{workers: 1, quiet: true}); err == nil {
		t.Fatal("mix+builder conflict did not error")
	}
}

func TestRunGridSpecFileSeedOverride(t *testing.T) {
	path := writeSpec(t, tinySpec)
	outPath := filepath.Join(filepath.Dir(path), "out.json")
	if err := run(&bytes.Buffer{}, "@"+path, runOpts{workers: 1, out: outPath, seed: 99, seedSet: true, quiet: true}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sweep.LoadReport(data, outPath)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grid.BaseSeed != 99 {
		t.Fatalf("explicit -seed not applied: base_seed = %d", rep.Grid.BaseSeed)
	}
}

func TestDiffFilesSelfAndPerturbed(t *testing.T) {
	rep, err := sweep.Run(sweep.Grid{
		Name:           "difftest",
		Machines:       []int{1},
		Jobs:           []int{5},
		BaseSeed:       7,
		RatePerMachine: 2,
	}, sweep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	js, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	if err := os.WriteFile(oldPath, js, 0o644); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	res, err := diffFiles(&buf, []string{oldPath, oldPath}, diffTols{})
	if err != nil {
		t.Fatal(err)
	}
	if res.HasRegressions() {
		t.Fatalf("self-diff reports regressions:\n%s", buf.String())
	}

	// Perturb one makespan and expect a regression plus a markdown table.
	rep2 := *rep
	cells := append([]sweep.CellSummary(nil), rep.Cells...)
	cells[0].Makespan.Mean *= 1.5
	rep2.Cells = cells
	js2, err := rep2.JSON()
	if err != nil {
		t.Fatal(err)
	}
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(newPath, js2, 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	res, err = diffFiles(&buf, []string{oldPath, newPath}, diffTols{tol: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasRegressions() {
		t.Fatal("perturbed artifact not flagged as regression")
	}
	if out := buf.String(); !strings.Contains(out, "| cell | metric |") || !strings.Contains(out, "REGRESSION") {
		t.Fatalf("markdown delta table missing:\n%s", out)
	}

	if _, err := diffFiles(&buf, []string{oldPath}, diffTols{}); err == nil {
		t.Fatal("one-argument diff did not error")
	}
}

func TestParseTolerances(t *testing.T) {
	opt, err := parseTolerances(diffTols{tol: 0.02, perMetric: "makespan_s=0.1,slo_violations=0"})
	if err != nil {
		t.Fatal(err)
	}
	if opt.RelTol != 0.02 || opt.PerMetric["makespan_s"] != 0.1 {
		t.Fatalf("tolerances parsed as %+v", opt)
	}
	if _, err := parseTolerances(diffTols{perMetric: "bogus_metric=1"}); err == nil {
		t.Fatal("unknown metric accepted")
	}
	if _, err := parseTolerances(diffTols{perMetric: "makespan_s"}); err == nil {
		t.Fatal("missing =value accepted")
	}
}

// TestRunBenchArtifactAndDiffBench drives the perf harness end to end:
// run a grid with -bench/-bench-go and profile flags, then perf-diff the
// artifact against itself (clean) and against a slower baseline (gated).
func TestRunBenchArtifactAndDiffBench(t *testing.T) {
	dir := t.TempDir()
	goBenchPath := filepath.Join(dir, "gobench.txt")
	goBench := "BenchmarkFig11Scenario2 \t 1\t 610786475 ns/op\t 108440456 B/op\t 2433719 allocs/op\n"
	if err := os.WriteFile(goBenchPath, []byte(goBench), 0o644); err != nil {
		t.Fatal(err)
	}
	path := writeSpec(t, tinySpec)
	benchPath := filepath.Join(dir, "BENCH_sweep.json")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	err := run(&bytes.Buffer{}, "@"+path, runOpts{
		workers: 2, quiet: true,
		bench: benchPath, benchGo: goBenchPath,
		cpuProfile: cpu, memProfile: mem,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{benchPath, cpu, mem} {
		if st, err := os.Stat(p); err != nil || st.Size() == 0 {
			t.Fatalf("%s missing or empty (err=%v)", p, err)
		}
	}
	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	br, err := sweep.LoadBenchReport(data, benchPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Grids) != 1 || br.Grids[0].Grid != "tiny" || br.Grids[0].ElapsedSec <= 0 {
		t.Fatalf("bench artifact grids: %+v", br.Grids)
	}
	if len(br.Benchmarks) != 1 || br.Benchmarks[0].AllocsPerOp != 2433719 {
		t.Fatalf("bench artifact benchmarks: %+v", br.Benchmarks)
	}

	// Self-diff under any tolerance is clean.
	var buf bytes.Buffer
	res, err := diffBenchFiles(&buf, []string{benchPath, benchPath}, 0.5, "", false)
	if err != nil {
		t.Fatal(err)
	}
	if res.HasRegressions() {
		t.Fatalf("bench self-diff regressed:\n%s", buf.String())
	}

	// A baseline with 10x fewer allocs flags the current run.
	tight := *br
	tight.Benchmarks = []sweep.GoBench{{Name: "BenchmarkFig11Scenario2", NsPerOp: 610786475, BytesPerOp: 108440456, AllocsPerOp: 243371}}
	js, err := tight.JSON()
	if err != nil {
		t.Fatal(err)
	}
	tightPath := filepath.Join(dir, "tight.json")
	if err := os.WriteFile(tightPath, js, 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	res, err = diffBenchFiles(&buf, []string{tightPath, benchPath}, 5, "allocs_per_op=0.1", false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasRegressions() {
		t.Fatalf("alloc regression passed the per-metric gate:\n%s", buf.String())
	}

	if _, err := diffBenchFiles(&buf, []string{benchPath}, 0, "", false); err == nil {
		t.Fatal("one-argument -diff-bench did not error")
	}
	if _, err := diffBenchFiles(&buf, []string{benchPath, benchPath}, 0, "nope=1", false); err == nil {
		t.Fatal("unknown bench metric accepted")
	}
}

// TestRunBenchGoRequiresBench pins the flag dependency.
func TestRunBenchGoRequiresBench(t *testing.T) {
	path := writeSpec(t, tinySpec)
	err := run(&bytes.Buffer{}, "@"+path, runOpts{workers: 1, quiet: true, benchGo: "whatever.txt"})
	if err == nil || !strings.Contains(err.Error(), "-bench") {
		t.Fatalf("want -bench-go dependency error, got %v", err)
	}
}
