// Command topoload is the load harness for toposerve: it drives a
// workloadgen-style job stream at the /v1 HTTP API through the typed
// client (internal/serveapi/client), measures the placement-decision
// round trip at the client, and writes a BENCH_serve.json artifact
// (the sweep bench schema's serving section) that toposweep -diff-bench
// gates in CI.
//
//	toposerve -topology minsky:2 -max-queue 64 &
//	topoload  -topology minsky:2 -url http://127.0.0.1:8080 -jobs 200 -workers 8
//
// Without -url, topoload starts an in-process server on a loopback
// port (same engine, internal/serve) so one command benchmarks the
// whole stack:
//
//	topoload -topology minsky:2 -policy topo-p -jobs 200 -o BENCH_serve.json
//
// Traffic model: by default -workers closed-loop submitters drain the
// generated job list; every placed job is released after -hold, so the
// cluster churns and queued jobs keep waking up. With -submit-rate R
// the harness switches to open-loop load: each job is submitted at its
// own scheduled arrival time (Poisson process at R jobs/s by default,
// or evenly spaced with -arrivals fixed) regardless of how fast the
// server answers, so measured latency reflects queueing under a fixed
// offered rate instead of self-throttling to server speed. Arrival
// spacing is deterministic per -seed. Submissions rejected by
// admission control are retried by the client per Retry-After up to its
// budget; a terminal failure of any kind counts into the artifact's
// errors metric, which the perf gate holds at zero deterministically.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gputopo/internal/job"
	"gputopo/internal/schedcore"
	"gputopo/internal/serve"
	"gputopo/internal/serveapi"
	"gputopo/internal/serveapi/client"
	"gputopo/internal/sweep"
	"gputopo/internal/workload"
)

type config struct {
	url        string
	topoArg    string
	policy     string
	disc       string
	preempt    bool
	prioShare  float64
	jobs       int
	seed       uint64
	rate       float64
	submitRate float64
	arrivals   string
	workers    int
	hold       time.Duration
	retries    int
	maxQueue   int
	noCache    bool
	logPath    string
	name       string
	out        string
	appendTo   bool
	quiet      bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.url, "url", "", "target toposerve base URL (empty: run an in-process server)")
	flag.StringVar(&cfg.topoArg, "topology", "minsky:2", "topology spec shaping the generated workload (and the in-process server)")
	flag.StringVar(&cfg.policy, "policy", "topo-p", "in-process server policy")
	flag.StringVar(&cfg.disc, "discipline", "", "in-process server queue discipline: fifo (default) or priority")
	flag.BoolVar(&cfg.preempt, "preempt", false, "enable preemption on the in-process server")
	flag.Float64Var(&cfg.prioShare, "priority-share", 0, "fraction of generated jobs submitted at priority 1 (mixed-priority load)")
	flag.IntVar(&cfg.jobs, "jobs", 200, "jobs to submit")
	flag.Uint64Var(&cfg.seed, "seed", 42, "workload generator seed")
	flag.Float64Var(&cfg.rate, "rate", 10, "workload generator arrival rate (jobs/min), shapes sizes and arrival spacing")
	flag.Float64Var(&cfg.submitRate, "submit-rate", 0, "open-loop target submit rate (jobs/sec); 0: closed-loop via -workers")
	flag.StringVar(&cfg.arrivals, "arrivals", "poisson", "open-loop arrival process: poisson or fixed")
	flag.IntVar(&cfg.workers, "workers", 8, "concurrent closed-loop submitters (ignored in open-loop mode)")
	flag.DurationVar(&cfg.hold, "hold", 20*time.Millisecond, "how long a placed job runs before release")
	flag.IntVar(&cfg.retries, "retries", 8, "client retry budget for 429 admission rejections")
	flag.IntVar(&cfg.maxQueue, "max-queue", 0, "in-process server admission limit (0: unlimited)")
	placeCache := flag.Bool("place-cache", true, "enable the in-process server's placement cache (placements are identical either way)")
	flag.StringVar(&cfg.logPath, "log", "", "in-process server event-log path (empty: in-memory)")
	flag.StringVar(&cfg.name, "name", "", "bench entry name (default serve/<topology>/<policy>)")
	flag.StringVar(&cfg.out, "o", "BENCH_serve.json", "bench artifact path (empty: don't write)")
	flag.BoolVar(&cfg.appendTo, "append", false, "merge into an existing artifact instead of overwriting")
	flag.BoolVar(&cfg.quiet, "quiet", false, "suppress the summary")
	flag.Parse()
	cfg.noCache = !*placeCache
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "topoload:", err)
		os.Exit(1)
	}
}

func run(cfg config, w io.Writer) error {
	spec, err := sweep.ParseTopologyArg(cfg.topoArg)
	if err != nil {
		return err
	}
	topo, err := spec.Build(spec.EffectiveMachines(1), false)
	if err != nil {
		return err
	}
	jobs, err := workload.Generate(workload.GenConfig{
		Jobs: cfg.jobs, Seed: cfg.seed, ArrivalRate: cfg.rate,
		HighPriorityShare: cfg.prioShare,
	}, topo)
	if err != nil {
		return err
	}

	base := cfg.url
	if base == "" {
		pol, err := schedcore.ParsePolicy(cfg.policy)
		if err != nil {
			return err
		}
		srv, err := serve.New(serve.Config{
			Spec: spec, Policy: pol, Discipline: cfg.disc, Preemption: cfg.preempt,
			LogPath: cfg.logPath, MaxQueue: cfg.maxQueue,
			DisablePlaceCache: cfg.noCache,
		})
		if err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		defer func() {
			httpSrv.Close()
			srv.Close()
		}()
		base = "http://" + ln.Addr().String()
	}

	c := client.New(base, client.WithMaxRetries(cfg.retries))
	ctx := context.Background()
	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("server at %s not healthy: %w", base, err)
	}

	sb, pc, err := drive(ctx, c, jobs, cfg)
	if err != nil {
		return err
	}

	if !cfg.quiet {
		fmt.Fprintf(w, "topoload: %s: %d jobs in %.2fs (%.1f jobs/s), %d placed on submit, %d errors, %d admission retries\n",
			sb.Name, sb.Jobs, sb.ElapsedSec, sb.JobsPerSec, sb.Placed, sb.Errors, sb.Retries429)
		fmt.Fprintf(w, "topoload: placement latency p50=%.2fms p95=%.2fms p99=%.2fms, %d decisions (%.0f/s)\n",
			sb.LatencyP50Ms, sb.LatencyP95Ms, sb.LatencyP99Ms, sb.Decisions, sb.DecisionsPerSec)
		if pc != nil {
			fmt.Fprintf(w, "topoload: place cache %d hits / %d misses / %d evictions\n",
				pc.Hits, pc.Misses, pc.Evictions)
		}
	}
	if cfg.out == "" {
		return nil
	}
	report := &sweep.BenchReport{}
	if cfg.appendTo {
		if data, err := os.ReadFile(cfg.out); err == nil {
			if prev, err := sweep.LoadBenchReport(data, cfg.out); err == nil {
				report = prev
			} else {
				return err
			}
		}
	}
	report.AddServe(sb)
	js, err := report.JSON()
	if err != nil {
		return err
	}
	return os.WriteFile(cfg.out, js, 0o644)
}

// drive runs the submit phase — closed-loop by default, open-loop when
// -submit-rate is set — and assembles the bench entry plus the server's
// placement-cache counters (nil when the cache is off or the server
// predates them).
func drive(ctx context.Context, c *client.Client, jobs []*job.Job, cfg config) (sweep.ServeBench, *serveapi.PlaceCacheStats, error) {
	var (
		mu        sync.Mutex
		latencies []time.Duration
		placed    int64
		errs      int64
		releaseWG sync.WaitGroup
	)
	// submitOne is the shared submit+hold+release path; both traffic
	// models feed it, they differ only in when each call starts.
	submitOne := func(j *job.Job) {
		req := serveapi.JobRequest{
			ID: j.ID, Model: j.Model.String(), BatchSize: j.BatchSize,
			GPUs: j.GPUs, MinUtility: j.MinUtility, Iterations: j.Iterations,
			Priority: j.Priority,
		}
		t0 := time.Now()
		jr, err := c.SubmitJob(ctx, req)
		rtt := time.Since(t0)
		if err != nil {
			atomic.AddInt64(&errs, 1)
			return
		}
		mu.Lock()
		latencies = append(latencies, rtt)
		mu.Unlock()
		if jr.Status == "placed" {
			atomic.AddInt64(&placed, 1)
			id := jr.ID
			releaseWG.Add(1)
			time.AfterFunc(cfg.hold, func() {
				defer releaseWG.Done()
				if _, err := c.ReleaseJob(ctx, id); err != nil {
					atomic.AddInt64(&errs, 1)
				}
			})
		}
	}

	var wg sync.WaitGroup
	start := time.Now()
	if cfg.submitRate > 0 {
		// Open-loop: every job has a scheduled arrival offset from the
		// target rate; submit at that wall-clock instant in its own
		// goroutine whether or not earlier requests have returned.
		offsets, err := arrivalOffsets(len(jobs), cfg)
		if err != nil {
			return sweep.ServeBench{}, nil, err
		}
		for i, j := range jobs {
			wg.Add(1)
			go func(j *job.Job, at time.Duration) {
				defer wg.Done()
				time.Sleep(time.Until(start.Add(at)))
				submitOne(j)
			}(j, offsets[i])
		}
	} else {
		work := make(chan *job.Job)
		for i := 0; i < cfg.workers; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range work {
					submitOne(j)
				}
			}()
		}
		for _, j := range jobs {
			work <- j
		}
		close(work)
	}
	wg.Wait()
	elapsed := time.Since(start)
	// Let held jobs finish releasing so the server's decision counters
	// settle before the final state read.
	releaseWG.Wait()

	st, err := c.State(ctx)
	if err != nil {
		return sweep.ServeBench{}, nil, err
	}
	_, retries := c.Stats()

	name := cfg.name
	if name == "" {
		name = fmt.Sprintf("serve/%s/%s", cfg.topoArg, cfg.policy)
	}
	sb := sweep.ServeBench{
		Name:       name,
		Mode:       "closed-loop",
		Jobs:       len(jobs),
		Errors:     int(errs),
		Placed:     int(placed),
		Retries429: int(retries),
		Decisions:  st.Stats.Decisions,
		ElapsedSec: elapsed.Seconds(),
	}
	if cfg.submitRate > 0 {
		sb.Mode = "open-loop"
		sb.TargetJobsPerSec = cfg.submitRate
	}
	if sb.ElapsedSec > 0 {
		sb.JobsPerSec = float64(sb.Jobs) / sb.ElapsedSec
		sb.DecisionsPerSec = float64(sb.Decisions) / sb.ElapsedSec
	}
	sb.LatencyP50Ms = percentileMs(latencies, 50)
	sb.LatencyP95Ms = percentileMs(latencies, 95)
	sb.LatencyP99Ms = percentileMs(latencies, 99)
	return sb, st.PlaceCache, nil
}

// arrivalOffsets returns each job's scheduled submit time as an offset
// from the run's start, for the open-loop traffic model. Poisson draws
// exponential inter-arrival gaps at the target rate from a generator
// seeded by -seed, so a given (jobs, rate, seed) triple always yields
// the same arrival schedule; fixed spaces submissions evenly at 1/rate.
func arrivalOffsets(n int, cfg config) ([]time.Duration, error) {
	gap := time.Duration(float64(time.Second) / cfg.submitRate)
	offsets := make([]time.Duration, n)
	switch cfg.arrivals {
	case "fixed":
		for i := range offsets {
			offsets[i] = time.Duration(i) * gap
		}
	case "poisson":
		rng := rand.New(rand.NewSource(int64(cfg.seed)))
		at := time.Duration(0)
		for i := range offsets {
			at += time.Duration(rng.ExpFloat64() * float64(gap))
			offsets[i] = at
		}
	default:
		return nil, fmt.Errorf("unknown -arrivals %q (want poisson or fixed)", cfg.arrivals)
	}
	return offsets, nil
}

// percentileMs returns the p-th percentile (nearest-rank) in
// milliseconds. Sorts its input.
func percentileMs(ds []time.Duration, p int) float64 {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	rank := (len(ds)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(ds) {
		rank = len(ds)
	}
	return float64(ds[rank-1]) / float64(time.Millisecond)
}
