package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gputopo/internal/sweep"
)

// TestRunInProcess drives the whole harness end to end against the
// in-process server and checks the BENCH_serve.json artifact it writes:
// every generated job accounted for, zero errors, and the
// deterministic metrics the CI gate relies on populated.
func TestRunInProcess(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_serve.json")
	cfg := config{
		topoArg: "minsky:2",
		policy:  "topo-p",
		jobs:    25,
		seed:    42,
		rate:    10,
		workers: 4,
		hold:    time.Millisecond,
		retries: 8,
		logPath: filepath.Join(dir, "events.log"),
		out:     out,
	}
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "placement latency") {
		t.Fatalf("summary missing: %q", buf.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	report, err := sweep.LoadBenchReport(data, out)
	if err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if len(report.Serving) != 1 {
		t.Fatalf("want 1 serving entry, got %d", len(report.Serving))
	}
	sb := report.Serving[0]
	if sb.Name != "serve/minsky:2/topo-p" {
		t.Fatalf("entry name %q", sb.Name)
	}
	if sb.Jobs != cfg.jobs {
		t.Fatalf("jobs %d, want %d", sb.Jobs, cfg.jobs)
	}
	if sb.Errors != 0 {
		t.Fatalf("%d errors driving an unlimited-queue server", sb.Errors)
	}
	if sb.Placed == 0 || sb.Placed > sb.Jobs {
		t.Fatalf("placed %d outside (0, %d]", sb.Placed, sb.Jobs)
	}
	// Batching and FIFO head-of-line blocking keep decisions below the
	// job count, but every placement cost at least one.
	if sb.Decisions < sb.Placed {
		t.Fatalf("decisions %d < placed %d", sb.Decisions, sb.Placed)
	}
	if sb.LatencyP50Ms <= 0 || sb.LatencyP99Ms < sb.LatencyP50Ms {
		t.Fatalf("latency percentiles inconsistent: p50=%v p99=%v", sb.LatencyP50Ms, sb.LatencyP99Ms)
	}
	if sb.ElapsedSec <= 0 || sb.JobsPerSec <= 0 || sb.DecisionsPerSec <= 0 {
		t.Fatalf("rates unset: %+v", sb)
	}

	// -append merges a second entry instead of clobbering the artifact.
	cfg.name = "serve/second"
	cfg.appendTo = true
	cfg.logPath = filepath.Join(dir, "events2.log")
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("append run: %v", err)
	}
	data, err = os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	report, err = sweep.LoadBenchReport(data, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Serving) != 2 {
		t.Fatalf("append kept %d entries, want 2", len(report.Serving))
	}
}

func TestPercentileMs(t *testing.T) {
	ds := []time.Duration{4 * time.Millisecond, time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond}
	if got := percentileMs(ds, 50); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := percentileMs(ds, 99); got != 4 {
		t.Fatalf("p99 = %v, want 4", got)
	}
	if got := percentileMs(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}
