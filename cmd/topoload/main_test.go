package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"gputopo/internal/sweep"
)

// TestRunInProcess drives the whole harness end to end against the
// in-process server and checks the BENCH_serve.json artifact it writes:
// every generated job accounted for, zero errors, and the
// deterministic metrics the CI gate relies on populated.
func TestRunInProcess(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_serve.json")
	cfg := config{
		topoArg: "minsky:2",
		policy:  "topo-p",
		jobs:    25,
		seed:    42,
		rate:    10,
		workers: 4,
		hold:    time.Millisecond,
		retries: 8,
		logPath: filepath.Join(dir, "events.log"),
		out:     out,
	}
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "placement latency") {
		t.Fatalf("summary missing: %q", buf.String())
	}

	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	report, err := sweep.LoadBenchReport(data, out)
	if err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if len(report.Serving) != 1 {
		t.Fatalf("want 1 serving entry, got %d", len(report.Serving))
	}
	sb := report.Serving[0]
	if sb.Name != "serve/minsky:2/topo-p" {
		t.Fatalf("entry name %q", sb.Name)
	}
	if sb.Jobs != cfg.jobs {
		t.Fatalf("jobs %d, want %d", sb.Jobs, cfg.jobs)
	}
	if sb.Errors != 0 {
		t.Fatalf("%d errors driving an unlimited-queue server", sb.Errors)
	}
	if sb.Placed == 0 || sb.Placed > sb.Jobs {
		t.Fatalf("placed %d outside (0, %d]", sb.Placed, sb.Jobs)
	}
	// Batching and FIFO head-of-line blocking keep decisions below the
	// job count, but every placement cost at least one.
	if sb.Decisions < sb.Placed {
		t.Fatalf("decisions %d < placed %d", sb.Decisions, sb.Placed)
	}
	if sb.LatencyP50Ms <= 0 || sb.LatencyP99Ms < sb.LatencyP50Ms {
		t.Fatalf("latency percentiles inconsistent: p50=%v p99=%v", sb.LatencyP50Ms, sb.LatencyP99Ms)
	}
	if sb.ElapsedSec <= 0 || sb.JobsPerSec <= 0 || sb.DecisionsPerSec <= 0 {
		t.Fatalf("rates unset: %+v", sb)
	}

	// -append merges a second entry instead of clobbering the artifact.
	cfg.name = "serve/second"
	cfg.appendTo = true
	cfg.logPath = filepath.Join(dir, "events2.log")
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("append run: %v", err)
	}
	data, err = os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	report, err = sweep.LoadBenchReport(data, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Serving) != 2 {
		t.Fatalf("append kept %d entries, want 2", len(report.Serving))
	}
}

// TestRunOpenLoop switches the harness to open-loop mode: jobs arrive
// on a fixed schedule at -submit-rate regardless of server latency, and
// the artifact records the traffic model and the offered rate.
func TestRunOpenLoop(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_serve.json")
	cfg := config{
		topoArg:    "minsky:2",
		policy:     "topo-p",
		jobs:       20,
		seed:       42,
		rate:       10,
		submitRate: 2000,
		arrivals:   "fixed",
		hold:       time.Millisecond,
		retries:    8,
		out:        out,
		quiet:      true,
	}
	var buf bytes.Buffer
	if err := run(cfg, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	report, err := sweep.LoadBenchReport(data, out)
	if err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if len(report.Serving) != 1 {
		t.Fatalf("want 1 serving entry, got %d", len(report.Serving))
	}
	sb := report.Serving[0]
	if sb.Mode != "open-loop" || sb.TargetJobsPerSec != cfg.submitRate {
		t.Fatalf("traffic model not recorded: mode=%q target=%v", sb.Mode, sb.TargetJobsPerSec)
	}
	if sb.Jobs != cfg.jobs || sb.Errors != 0 {
		t.Fatalf("jobs=%d errors=%d, want %d jobs and no errors", sb.Jobs, sb.Errors, cfg.jobs)
	}
	// 20 jobs at 2000/s take >= 19 gaps of 0.5ms: open-loop elapsed time
	// is bounded below by the arrival schedule, not the server.
	if sb.ElapsedSec < 0.0095 {
		t.Fatalf("elapsed %.4fs shorter than the arrival schedule", sb.ElapsedSec)
	}
}

// TestArrivalOffsets pins the two arrival processes: fixed spacing is
// exact, and poisson is deterministic in the seed with monotone offsets.
func TestArrivalOffsets(t *testing.T) {
	cfg := config{submitRate: 100, arrivals: "fixed"}
	fixed, err := arrivalOffsets(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond}
	for i := range want {
		if fixed[i] != want[i] {
			t.Fatalf("fixed[%d] = %v, want %v", i, fixed[i], want[i])
		}
	}

	cfg.arrivals = "poisson"
	cfg.seed = 7
	a, err := arrivalOffsets(50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := arrivalOffsets(50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("poisson schedule not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("poisson offsets not monotone at %d", i)
		}
	}

	cfg.arrivals = "uniform"
	if _, err := arrivalOffsets(1, cfg); err == nil {
		t.Fatal("unknown arrival process accepted")
	}
}

func TestPercentileMs(t *testing.T) {
	ds := []time.Duration{4 * time.Millisecond, time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond}
	if got := percentileMs(ds, 50); got != 2 {
		t.Fatalf("p50 = %v, want 2", got)
	}
	if got := percentileMs(ds, 99); got != 4 {
		t.Fatalf("p99 = %v, want 4", got)
	}
	if got := percentileMs(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}
