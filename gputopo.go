// Package gputopo is a Go implementation of the topology-aware GPU
// scheduler for deep-learning workloads described in
//
//	Amaral, Polo, Carrera, Seelam, Steinder.
//	"Topology-Aware GPU Scheduling for Learning Workloads in Cloud
//	Environments." SC17. DOI 10.1145/3126908.3126933.
//
// The library models multi-GPU system topologies (IBM Power8 "Minsky",
// NVIDIA DGX-1, PCIe boxes, and clusters thereof), represents jobs as
// communication graphs, and places jobs onto GPUs with a Dual Recursive
// Bi-partitioning mapper driven by a utility function combining
// communication cost, predicted co-location interference, and resource
// fragmentation. Two topology-aware scheduling policies (TOPO-AWARE and
// TOPO-AWARE-P) are provided next to the FCFS and Best-Fit baselines, and
// two execution engines reproduce the paper's evaluation: an
// iteration-granularity prototype emulator and a trace-driven cluster
// simulator.
//
// # Quick start
//
//	topo := gputopo.NewPower8Minsky()
//	jobs := []*gputopo.Job{
//		gputopo.NewJob("j0", gputopo.AlexNet, 4, 2, 0.5, 0),
//	}
//	res, err := gputopo.Simulate(gputopo.SimConfig{
//		Topology: topo,
//		Policy:   gputopo.TopoAwareP,
//	}, jobs)
//
// See the examples/ directory for complete programs and EXPERIMENTS.md for
// the paper-vs-measured record of every reproduced table and figure.
package gputopo

import (
	"gputopo/internal/caffesim"
	"gputopo/internal/core"
	"gputopo/internal/job"
	"gputopo/internal/jobgraph"
	"gputopo/internal/perfmodel"
	"gputopo/internal/profile"
	"gputopo/internal/sched"
	"gputopo/internal/simulator"
	"gputopo/internal/topology"
	"gputopo/internal/trace"
	"gputopo/internal/workload"
)

// Re-exported core types. The internal packages carry the implementation;
// this facade is the supported public API.
type (
	// Topology is a physical GPU system topology graph (§4.1.2).
	Topology = topology.Topology
	// Job is a deep-learning training job to schedule.
	Job = job.Job
	// Placement is a scored GPU allocation.
	Placement = core.Placement
	// Weights are the utility/objective α coefficients.
	Weights = core.Weights
	// Policy is a scheduling policy.
	Policy = sched.Policy
	// NN identifies a neural network model.
	NN = perfmodel.NN
	// BatchClass buckets batch sizes (tiny/small/medium/big).
	BatchClass = jobgraph.BatchClass
	// ProfileStore holds per-workload-class performance profiles (§4.2).
	ProfileStore = profile.Store
	// SimConfig parameterizes the trace-driven simulator.
	SimConfig = simulator.Config
	// SimResult is a simulation outcome with per-job metrics.
	SimResult = simulator.Result
	// JobResult is the outcome of a single job.
	JobResult = simulator.JobResult
	// PrototypeConfig parameterizes the iteration-level prototype engine.
	PrototypeConfig = caffesim.Config
	// PrototypeResult extends SimResult with bandwidth time series.
	PrototypeResult = caffesim.Result
	// Trace is a recorded or generated job trace (§5.3).
	Trace = trace.Trace
	// WorkloadConfig parameterizes the random workload generator.
	WorkloadConfig = workload.GenConfig
)

// Scheduling policies (§5.2).
const (
	FCFS       = sched.FCFS
	BestFit    = sched.BestFit
	TopoAware  = sched.TopoAware
	TopoAwareP = sched.TopoAwareP
)

// Neural network models (§2).
const (
	AlexNet   = perfmodel.AlexNet
	CaffeRef  = perfmodel.CaffeRef
	GoogLeNet = perfmodel.GoogLeNet
)

// Batch classes (§5.3).
const (
	BatchTiny   = jobgraph.BatchTiny
	BatchSmall  = jobgraph.BatchSmall
	BatchMedium = jobgraph.BatchMedium
	BatchBig    = jobgraph.BatchBig
)

// NewPower8Minsky builds the paper's testbed machine: 2 sockets × 2 P100
// GPUs, dual NVLink (§3.1, Figure 1).
func NewPower8Minsky() *Topology { return topology.Power8Minsky() }

// NewDGX1 builds the NVIDIA DGX-1 hybrid cube-mesh topology (Figure 1).
func NewDGX1() *Topology { return topology.DGX1() }

// NewPCIeBox builds the PCIe-Gen3/K80 comparison machine (§3.2).
func NewPCIeBox() *Topology { return topology.PCIeBox() }

// NewMinskyCluster builds a homogeneous cluster of n Minsky machines
// joined by a network, as simulated in §5.5.
func NewMinskyCluster(n int) *Topology { return topology.Cluster(n, topology.KindMinsky) }

// DiscoverTopology parses an `nvidia-smi topo --matrix`-style connectivity
// matrix into a machine topology, reproducing the prototype's startup
// discovery (§5.1).
func DiscoverTopology(matrix string) (*Topology, error) { return topology.ParseMatrix(matrix) }

// NewJob creates a data-parallel training job: model, per-GPU batch size,
// GPU count, minimum placement utility (SLO), and arrival time in seconds.
func NewJob(id string, model NN, batchSize, gpus int, minUtility, arrival float64) *Job {
	return job.New(id, model, batchSize, gpus, minUtility, arrival)
}

// DefaultWeights returns the equal α weighting of §5.2.1.
func DefaultWeights() Weights { return core.DefaultWeights() }

// GenerateProfiles builds the profile store for all workload classes on
// the topology (§4.2).
func GenerateProfiles(topo *Topology, maxGPUs int) *ProfileStore {
	return profile.Generate(topo, maxGPUs)
}

// Simulate runs the trace-driven simulator over the job stream.
func Simulate(cfg SimConfig, jobs []*Job) (*SimResult, error) {
	return simulator.Run(cfg, jobs)
}

// RunPrototype executes the job stream at iteration granularity with
// bandwidth accounting — the in-process equivalent of the paper's Power8
// prototype (§5.1).
func RunPrototype(cfg PrototypeConfig, jobs []*Job) (*PrototypeResult, error) {
	return caffesim.Run(cfg, jobs)
}

// Table1Workload returns the six-job prototype scenario of Table 1.
func Table1Workload() []*Job { return workload.Table1() }

// GenerateWorkload produces the randomized §5.3 job stream (Poisson
// arrivals, Binomial batch/model mixes).
func GenerateWorkload(cfg WorkloadConfig, topo *Topology) ([]*Job, error) {
	return workload.Generate(cfg, topo)
}

// AllPolicies lists every scheduling policy in the paper's presentation
// order (BF, FCFS, TOPO-AWARE, TOPO-AWARE-P).
func AllPolicies() []Policy { return sched.AllPolicies() }
