package gputopo

import (
	"path/filepath"
	"testing"

	"gputopo/internal/sweep"
)

// TestExampleGridSpecsLoad validates every shipped grid spec in
// examples/sweeps/ through the same LoadGridSpec path toposweep uses, so
// a spec-format change (or a broken matrix_file reference — paths resolve
// against the repository root, which is also this test's working
// directory) cannot silently rot the examples the docs point at.
func TestExampleGridSpecsLoad(t *testing.T) {
	specs, err := filepath.Glob(filepath.Join("examples", "sweeps", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no example grid specs found under examples/sweeps/")
	}
	for _, path := range specs {
		g, err := sweep.LoadGridSpec(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if len(g.Points()) == 0 {
			t.Errorf("%s: grid expands to zero points", path)
		}
	}
}
