package gputopo

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestDocsLinksResolve walks every markdown file in the repository and
// checks that relative links point at files or directories that exist.
// External links (http, mailto), pure anchors, and links that escape the
// repository root (GitHub-web-relative paths like the CI badge) are
// skipped. CI runs this in the docs job; it is also part of the normal
// test suite so broken links fail fast locally.
func TestDocsLinksResolve(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var mdFiles []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		// SNIPPETS.md and PAPERS.md are verbatim external reference
		// material (retrieved exemplar code and related work) whose
		// links point into their original repositories, not this one.
		if strings.HasSuffix(d.Name(), ".md") && d.Name() != "SNIPPETS.md" && d.Name() != "PAPERS.md" {
			mdFiles = append(mdFiles, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mdFiles) < 5 {
		t.Fatalf("only %d markdown files found — walker broken?", len(mdFiles))
	}
	checked := 0
	for _, md := range mdFiles {
		data, err := os.ReadFile(md)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(md), target)
			rel, err := filepath.Rel(root, resolved)
			if err != nil || strings.HasPrefix(rel, "..") {
				continue // GitHub-web-relative (e.g. the CI badge), not a repo file
			}
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken relative link %q (%s)", relPath(root, md), m[1], rel)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links checked — regex or corpus broken?")
	}
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil {
		return rel
	}
	return path
}
