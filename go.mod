module gputopo

go 1.24
