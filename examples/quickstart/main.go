// Quickstart: build the paper's Power8 Minsky topology, submit two
// training jobs, and place them with the TOPO-AWARE-P policy.
package main

import (
	"fmt"
	"log"

	"gputopo"
)

func main() {
	// The machine of §3.1: 2 sockets × 2 P100s, dual NVLink.
	topo := gputopo.NewPower8Minsky()
	fmt.Printf("topology: %s with %d GPUs on %d machine(s)\n\n",
		topo.Name, topo.NumGPUs(), topo.NumMachines())

	// Two jobs: a communication-hungry tiny-batch AlexNet on 2 GPUs and a
	// compute-bound big-batch GoogLeNet on 1 GPU, arriving 5s apart.
	jobs := []*gputopo.Job{
		gputopo.NewJob("alexnet-tiny", gputopo.AlexNet, 1, 2, 0.5, 0),
		gputopo.NewJob("googlenet-big", gputopo.GoogLeNet, 128, 1, 0.3, 5),
	}
	jobs[0].Iterations = 1000
	jobs[1].Iterations = 100

	res, err := gputopo.Simulate(gputopo.SimConfig{
		Topology: topo,
		Policy:   gputopo.TopoAwareP,
	}, jobs)
	if err != nil {
		log.Fatal(err)
	}

	for _, jr := range res.Jobs {
		fmt.Printf("%-14s -> GPUs %v  P2P=%-5v  utility=%.2f  wait=%.1fs  run=%.1fs (ideal %.1fs)\n",
			jr.Job.ID, jr.GPUs, jr.P2P, jr.Utility, jr.Wait, jr.Run, jr.Ideal)
	}
	fmt.Printf("\ncumulative execution time: %.1fs, SLO violations: %d\n",
		res.Makespan, res.SLOViolations())
}
