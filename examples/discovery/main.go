// Discovery: the prototype's startup workflow (§5.1) — discover the GPU
// topology from an `nvidia-smi topo --matrix`-style connectivity matrix,
// inspect what the scheduler sees, and place a job on the discovered
// machine.
package main

import (
	"fmt"
	"log"

	"gputopo"
)

// A connectivity matrix as nvidia-smi prints it on a Minsky-class machine:
// NV2 = dual NVLink, SYS = across the system bus.
const nvidiaSMIMatrix = `
     GPU0  GPU1  GPU2  GPU3
GPU0 X     NV2   SYS   SYS
GPU1 NV2   X     SYS   SYS
GPU2 SYS   SYS   X     NV2
GPU3 SYS   SYS   NV2   X
`

func main() {
	topo, err := gputopo.DiscoverTopology(nvidiaSMIMatrix)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("discovered topology:")
	fmt.Println(topo.RenderTree())

	fmt.Println("what the scheduler derives from it:")
	for i := 0; i < topo.NumGPUs(); i++ {
		for j := i + 1; j < topo.NumGPUs(); j++ {
			fmt.Printf("  GPU%d-GPU%d: distance %4.0f, effective %5.1f GB/s, P2P %v\n",
				i, j, topo.Distance(i, j), topo.EffectiveBandwidth(i, j), topo.P2P(i, j))
		}
	}

	// Place a communication-hungry job on the discovered machine.
	j := gputopo.NewJob("discovered-job", gputopo.AlexNet, 1, 2, 0.5, 0)
	j.Iterations = 500
	res, err := gputopo.Simulate(gputopo.SimConfig{
		Topology: topo,
		Policy:   gputopo.TopoAwareP,
	}, []*gputopo.Job{j})
	if err != nil {
		log.Fatal(err)
	}
	jr := res.Jobs[0]
	fmt.Printf("\nplaced %s on GPUs %v (P2P %v, utility %.2f)\n",
		jr.Job.ID, jr.GPUs, jr.P2P, jr.Utility)
}
