// Cluster: the large-scale trace-driven simulation of §5.5 — generate a
// Poisson workload, run it on a Minsky cluster under every policy, and
// compare slowdowns, waiting time and SLO violations (Figures 10 and 11).
//
// Flags scale the experiment: -jobs 10000 -machines 1000 reproduces
// scenario 2.
package main

import (
	"flag"
	"fmt"
	"log"

	"gputopo"
)

func main() {
	jobs := flag.Int("jobs", 100, "number of jobs (scenario 1: 100, scenario 2: 10000)")
	machines := flag.Int("machines", 5, "number of machines (scenario 1: 5, scenario 2: 1000)")
	seed := flag.Uint64("seed", 42, "workload seed")
	flag.Parse()

	topo := gputopo.NewMinskyCluster(*machines)
	stream, err := gputopo.GenerateWorkload(gputopo.WorkloadConfig{
		Jobs: *jobs,
		Seed: *seed,
	}, topo)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("scenario: %d jobs on %d machines (%d GPUs)\n\n",
		*jobs, *machines, topo.NumGPUs())

	for _, pol := range gputopo.AllPolicies() {
		res, err := gputopo.Simulate(gputopo.SimConfig{
			Topology: topo,
			Policy:   pol,
		}, stream)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s cumulative %8.1fs  SLO-viol %3d  mean QoS slowdown %.3f  mean QoS+wait %.3f  total wait %9.1fs\n",
			pol, res.Makespan, res.SLOViolations(), res.MeanSlowdownQoS(),
			res.MeanSlowdownQoSWait(), res.TotalWait())
	}
}
