// Packspread: the placement-strategy study of §3 — measure the pack vs
// spread speedup (Figure 4), the compute/communication breakdown
// (Figure 3), and the interconnect bandwidth usage (Figure 5) for the
// three neural networks across batch sizes, using the prototype engine.
package main

import (
	"fmt"
	"log"

	"gputopo"
	"gputopo/internal/perfmodel"
)

func main() {
	topo := gputopo.NewPower8Minsky()
	pack := []int{0, 1}   // same socket, dual NVLink
	spread := []int{0, 2} // across sockets, routed via X-Bus

	fmt.Println("Pack vs Spread speedup (>1 means pack wins), per batch size:")
	fmt.Printf("%8s %10s %10s %10s\n", "batch", "AlexNet", "CaffeRef", "GoogLeNet")
	for _, b := range []int{1, 2, 4, 8, 16, 32, 64, 128} {
		fmt.Printf("%8d", b)
		for m := perfmodel.NN(0); m < perfmodel.NumNN; m++ {
			fmt.Printf(" %9.3fx", perfmodel.PackSpreadSpeedup(m, b, topo, 1))
		}
		fmt.Println()
	}

	fmt.Println("\nExecution-time breakdown (AlexNet):")
	for _, b := range []int{1, 4, 32, 128} {
		_, commPack := perfmodel.Breakdown(perfmodel.AlexNet, b, topo, pack)
		_, commSpread := perfmodel.Breakdown(perfmodel.AlexNet, b, topo, spread)
		fmt.Printf("  batch %3d: comm %5.1f%% packed, %5.1f%% spread\n",
			b, commPack*100, commSpread*100)
	}

	fmt.Println("\nInterconnect usage of a solo 2-GPU AlexNet (prototype engine):")
	for _, b := range []int{1, 4, 64, 128} {
		j := gputopo.NewJob(fmt.Sprintf("bw-%d", b), gputopo.AlexNet, b, 2, 0.5, 0)
		j.Iterations = 500
		res, err := gputopo.RunPrototype(gputopo.PrototypeConfig{
			Topology: topo,
			Policy:   gputopo.TopoAware,
		}, []*gputopo.Job{j})
		if err != nil {
			log.Fatal(err)
		}
		pts := res.Bandwidth[j.ID]
		var mean float64
		for _, p := range pts {
			mean += p.GBs
		}
		if len(pts) > 0 {
			mean /= float64(len(pts))
		}
		fmt.Printf("  batch %3d: mean %.2f GB/s over %d windows\n", b, mean, len(pts))
	}
}
