// Prototype: reproduce the §5.2 experiment — the six-job Table 1 workload
// on one Power8 Minsky machine, executed at iteration granularity by the
// prototype engine under all four scheduling policies (Figure 8).
package main

import (
	"fmt"
	"log"

	"gputopo"
)

func main() {
	topo := gputopo.NewPower8Minsky()

	fmt.Println("Table 1 workload:")
	for _, j := range gputopo.Table1Workload() {
		fmt.Printf("  %s arrives %.2fs\n", j, j.Arrival)
	}
	fmt.Println()

	var base, topoP float64
	for _, pol := range gputopo.AllPolicies() {
		res, err := gputopo.RunPrototype(gputopo.PrototypeConfig{
			Topology: topo,
			Policy:   pol,
		}, gputopo.Table1Workload())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s cumulative %6.1fs  SLO violations %d\n",
			pol, res.Makespan, res.SLOViolations())
		for _, jr := range res.Jobs {
			fmt.Printf("    %-3s GPUs %v  P2P=%-5v  QoS slowdown %.2f  +wait %.2f\n",
				jr.Job.ID, jr.GPUs, jr.P2P, jr.SlowdownQoS, jr.SlowdownQoSWait)
		}
		switch pol {
		case gputopo.BestFit:
			base = res.Makespan
		case gputopo.TopoAwareP:
			topoP = res.Makespan
		}
	}
	fmt.Printf("\nTOPO-AWARE-P speedup over Best-Fit: %.2fx (paper: ≈1.30x)\n", base/topoP)
}
